#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/fingerprint.hpp"
#include "src/harness/result_cache.hpp"
#include "src/harness/sweep.hpp"
#include "src/sim/gpu.hpp"

/**
 * @file
 * The persistent result cache (docs/BENCH.md, "Result cache & resume"):
 * fingerprint stability and per-field sensitivity, the statsToJson /
 * statsFromJson inverse pair that cache records depend on, record
 * corruption and crash-leftover tolerance, ro vs rw semantics, and
 * resume-journal replay through the sweep runner.
 */

namespace bowsim {
namespace {

namespace fs = std::filesystem;

using harness::CacheCounters;
using harness::CacheMode;
using harness::FingerprintHasher;
using harness::Json;
using harness::PointKey;
using harness::ResultCache;
using harness::ResumeJournal;
using harness::SweepPoint;
using harness::SweepResult;
using harness::SweepRunner;

/** Fresh directory under the test temp root, removed on destruction. */
struct TempDir {
    fs::path path;

    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / ("bowsim_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

void
writeFile(const fs::path &p, const std::string &text)
{
    std::ofstream out(p);
    out << text;
}

/** A cheap registry point: TB at tiny scale on a two-core GTX480. */
SweepPoint
registryPoint(const std::string &id = "TB/GTO", bool bows = false)
{
    SweepPoint p;
    p.id = id;
    p.kernel = "TB";
    p.cfg = makeGtx480Config();
    p.cfg.numCores = 2;
    p.cfg.scheduler = SchedulerKind::GTO;
    p.cfg.bows.enabled = bows;
    p.scale = 0.05;
    return p;
}

/** The four-point sweep the runner tests share (matches
 *  test_sweep_runner's smallSweep, with ATM added for variety). */
std::vector<SweepPoint>
smallSweep()
{
    std::vector<SweepPoint> points;
    for (const char *kernel : {"TB", "ATM"}) {
        for (bool bows : {false, true}) {
            SweepPoint p = registryPoint(
                std::string(kernel) + (bows ? "/BOWS" : "/GTO"), bows);
            p.kernel = kernel;
            points.push_back(std::move(p));
        }
    }
    return points;
}

/**
 * A KernelStats with every field — including every optional block —
 * set to a distinct, recognizable value. Doubles are exactly
 * representable so dump/parse round trips are bit-exact.
 */
KernelStats
fullStats()
{
    KernelStats s;
    s.kernel = "RT";
    s.cycles = 123456;
    s.warpInstructions = 1001;
    s.threadInstructions = 31002;
    s.syncThreadInstructions = 4103;
    s.sibInstructions = 77;
    s.activeLaneSum = 29004;
    s.l1Accesses = 505;
    s.l1Hits = 404;
    s.l1Misses = 101;
    s.sharedAccesses = 33;
    s.syncMemTransactions = 21;
    s.mem.l2Accesses = 99;
    s.mem.l2Hits = 66;
    s.mem.l2Misses = 33;
    s.mem.dramAccesses = 44;
    s.mem.dramRowActivations = 11;
    s.mem.atomics = 55;
    s.mem.atomicWaitCycles = 202;
    s.mem.icntPackets = 88;
    s.outcomes.lockSuccess = 10;
    s.outcomes.interWarpFail = 20;
    s.outcomes.intraWarpFail = 30;
    s.outcomes.waitExitSuccess = 40;
    s.outcomes.waitExitFail = 50;
    s.residentWarpCycles = 8000;
    s.backedOffWarpCycles = 1200;
    s.spinningWarpCycles = 340;
    s.delayLimitCycleSum = 5000;
    s.smCycles = 2500;
    s.stallWarpsPerSm = 2;
    s.stallCounts.resize(2 * 2 * trace::kNumStallCauses);
    for (std::size_t i = 0; i < s.stallCounts.size(); ++i)
        s.stallCounts[i] = i + 1;
    s.unitsPerSm = 2;
    s.unitIssues = {7, 8, 9, 10};
    s.peakResidentPerSm = {12, 14};
    s.energy.warpInstructions = 1001;
    s.energy.laneAluOps = 24000;
    s.energy.rfReadLanes = 48000;
    s.energy.rfWriteLanes = 23000;
    s.energy.sharedAccesses = 33;
    s.energy.l1Accesses = 505;
    s.energy.l2Accesses = 99;
    s.energy.dramAccesses = 44;
    s.energy.icntPackets = 88;
    s.energy.atomicOps = 55;
    s.energyNj = 123.4375;
    s.staticEnergyNj = 7.25;
    s.ipcEst = 0.875;
    s.ipcCi95 = 0.125;
    s.sampledWindows = 4;
    s.ddos.trueBranches = 10;
    s.ddos.trueDetected = 9;
    s.ddos.falseBranches = 8;
    s.ddos.falseDetected = 1;
    s.ddos.dprTrueSum = 2.5;
    s.ddos.dprFalseSum = 0.5;
    return s;
}

// --- statsFromJson: the inverse the cache's correctness rests on ------

TEST(StatsJsonRoundTrip, EveryFieldSurvives)
{
    const KernelStats s = fullStats();
    const Json j = harness::statsToJson(s);
    const KernelStats t = harness::statsFromJson(j);

    EXPECT_EQ(t.kernel, s.kernel);
    EXPECT_EQ(t.cycles, s.cycles);
    EXPECT_EQ(t.warpInstructions, s.warpInstructions);
    EXPECT_EQ(t.threadInstructions, s.threadInstructions);
    EXPECT_EQ(t.syncThreadInstructions, s.syncThreadInstructions);
    EXPECT_EQ(t.sibInstructions, s.sibInstructions);
    EXPECT_EQ(t.activeLaneSum, s.activeLaneSum);
    EXPECT_EQ(t.l1Accesses, s.l1Accesses);
    EXPECT_EQ(t.l1Hits, s.l1Hits);
    EXPECT_EQ(t.l1Misses, s.l1Misses);
    EXPECT_EQ(t.sharedAccesses, s.sharedAccesses);
    EXPECT_EQ(t.syncMemTransactions, s.syncMemTransactions);
    EXPECT_EQ(t.mem.l2Accesses, s.mem.l2Accesses);
    EXPECT_EQ(t.mem.l2Hits, s.mem.l2Hits);
    EXPECT_EQ(t.mem.l2Misses, s.mem.l2Misses);
    EXPECT_EQ(t.mem.dramAccesses, s.mem.dramAccesses);
    EXPECT_EQ(t.mem.dramRowActivations, s.mem.dramRowActivations);
    EXPECT_EQ(t.mem.atomics, s.mem.atomics);
    EXPECT_EQ(t.mem.atomicWaitCycles, s.mem.atomicWaitCycles);
    EXPECT_EQ(t.mem.icntPackets, s.mem.icntPackets);
    EXPECT_EQ(t.outcomes.lockSuccess, s.outcomes.lockSuccess);
    EXPECT_EQ(t.outcomes.interWarpFail, s.outcomes.interWarpFail);
    EXPECT_EQ(t.outcomes.intraWarpFail, s.outcomes.intraWarpFail);
    EXPECT_EQ(t.outcomes.waitExitSuccess, s.outcomes.waitExitSuccess);
    EXPECT_EQ(t.outcomes.waitExitFail, s.outcomes.waitExitFail);
    EXPECT_EQ(t.residentWarpCycles, s.residentWarpCycles);
    EXPECT_EQ(t.backedOffWarpCycles, s.backedOffWarpCycles);
    EXPECT_EQ(t.spinningWarpCycles, s.spinningWarpCycles);
    EXPECT_EQ(t.delayLimitCycleSum, s.delayLimitCycleSum);
    EXPECT_EQ(t.smCycles, s.smCycles);
    EXPECT_EQ(t.stallWarpsPerSm, s.stallWarpsPerSm);
    EXPECT_EQ(t.stallCounts, s.stallCounts);
    EXPECT_EQ(t.unitsPerSm, s.unitsPerSm);
    EXPECT_EQ(t.unitIssues, s.unitIssues);
    EXPECT_EQ(t.peakResidentPerSm, s.peakResidentPerSm);
    EXPECT_EQ(t.energy.warpInstructions, s.energy.warpInstructions);
    EXPECT_EQ(t.energy.laneAluOps, s.energy.laneAluOps);
    EXPECT_EQ(t.energy.rfReadLanes, s.energy.rfReadLanes);
    EXPECT_EQ(t.energy.rfWriteLanes, s.energy.rfWriteLanes);
    EXPECT_EQ(t.energy.sharedAccesses, s.energy.sharedAccesses);
    EXPECT_EQ(t.energy.l1Accesses, s.energy.l1Accesses);
    EXPECT_EQ(t.energy.l2Accesses, s.energy.l2Accesses);
    EXPECT_EQ(t.energy.dramAccesses, s.energy.dramAccesses);
    EXPECT_EQ(t.energy.icntPackets, s.energy.icntPackets);
    EXPECT_EQ(t.energy.atomicOps, s.energy.atomicOps);
    EXPECT_EQ(t.energyNj, s.energyNj);
    EXPECT_EQ(t.staticEnergyNj, s.staticEnergyNj);
    EXPECT_EQ(t.ipcEst, s.ipcEst);
    EXPECT_EQ(t.ipcCi95, s.ipcCi95);
    EXPECT_EQ(t.sampledWindows, s.sampledWindows);
    EXPECT_EQ(t.ddos.trueBranches, s.ddos.trueBranches);
    EXPECT_EQ(t.ddos.trueDetected, s.ddos.trueDetected);
    EXPECT_EQ(t.ddos.falseBranches, s.ddos.falseBranches);
    EXPECT_EQ(t.ddos.falseDetected, s.ddos.falseDetected);
    EXPECT_EQ(t.ddos.dprTrueSum, s.ddos.dprTrueSum);
    EXPECT_EQ(t.ddos.dprFalseSum, s.ddos.dprFalseSum);

    // Derived fields recompute from the raws, so the re-dump is
    // byte-identical — which is what makes a cache hit
    // indistinguishable from a simulation in the artifact.
    EXPECT_EQ(harness::statsToJson(t).dump(), j.dump());

    // And it survives an actual parse from text, not just the in-memory
    // document (the cache reads records off disk).
    const KernelStats u = harness::statsFromJson(Json::parse(j.dump()));
    EXPECT_EQ(harness::statsToJson(u).dump(), j.dump());
}

TEST(StatsJsonRoundTrip, MinimalStatsOmitOptionalBlocks)
{
    KernelStats s;
    s.kernel = "TB";
    s.cycles = 10;
    s.warpInstructions = 5;

    const Json j = harness::statsToJson(s);
    EXPECT_FALSE(j.has("stall"));
    EXPECT_FALSE(j.has("stall_table"));
    EXPECT_FALSE(j.has("unit_issues"));
    EXPECT_FALSE(j.has("ipc_est"));
    EXPECT_FALSE(j.has("sampled_windows"));
    EXPECT_FALSE(j.at("sched").has("spinning_warp_cycles"));
    EXPECT_FALSE(j.at("sched").has("peak_resident_per_sm"));

    const KernelStats t = harness::statsFromJson(j);
    EXPECT_EQ(harness::statsToJson(t).dump(), j.dump());
    EXPECT_TRUE(t.stallCounts.empty());
    EXPECT_TRUE(t.unitIssues.empty());
    EXPECT_EQ(t.sampledWindows, 0u);
    EXPECT_EQ(t.spinningWarpCycles, 0u);
}

TEST(StatsJsonRoundTrip, NonFiniteValuesAreFatal)
{
    // A NaN/Inf statistic is a simulator bug; emitting it would produce
    // a record the cache would later read back as corrupt. Fail at the
    // source instead.
    KernelStats nan_energy = fullStats();
    nan_energy.energyNj = std::nan("");
    EXPECT_THROW(harness::statsToJson(nan_energy), FatalError);

    KernelStats inf_est = fullStats();
    inf_est.ipcEst = INFINITY;
    EXPECT_THROW(harness::statsToJson(inf_est), FatalError);

    KernelStats nan_dpr = fullStats();
    nan_dpr.ddos.dprFalseSum = -std::nan("");
    EXPECT_THROW(harness::statsToJson(nan_dpr), FatalError);
}

/** First-occurrence textual surgery (same idiom as test_json.cpp). */
Json
mutated(const Json &doc, const std::string &from, const std::string &to)
{
    std::string text = doc.dump();
    const std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return Json::parse(text);
}

TEST(StatsJsonRoundTrip, ParseRejectsContradictoryRecords)
{
    const Json j = harness::statsToJson(fullStats());

    // Missing required field.
    EXPECT_THROW(
        harness::statsFromJson(mutated(j, "\"cycles\":123456,", "")),
        FatalError);
    // A sampled record claiming zero windows.
    EXPECT_THROW(harness::statsFromJson(mutated(
                     j, "\"sampled_windows\":4", "\"sampled_windows\":0")),
                 FatalError);
    // An explicit zero for a presence-gated gauge.
    EXPECT_THROW(
        harness::statsFromJson(mutated(j, "\"spinning_warp_cycles\":340",
                                       "\"spinning_warp_cycles\":0")),
        FatalError);
}

// --- fingerprints ------------------------------------------------------

TEST(Fingerprint, StableAcrossCallsAndExcludedKnobs)
{
    const SweepPoint p = registryPoint();
    const PointKey a = harness::fingerprintPoint(p);
    const PointKey b = harness::fingerprintPoint(p);
    ASSERT_TRUE(a.cacheable) << a.reason;
    EXPECT_EQ(a.hash.size(), 64u);
    EXPECT_EQ(a.hash, b.hash);

    // The contractual execution knobs (docs/PERF.md) must not move the
    // key: results are byte-identical across them, so caching across
    // them is exactly the point. Each knob is mutated on its own so a
    // regression names the offending field.
    {
        SweepPoint knobs = p;
        knobs.cfg.idleSkip = !knobs.cfg.idleSkip;
        EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash)
            << "idleSkip";
    }
    {
        SweepPoint knobs = p;
        knobs.cfg.smThreads = 7;
        EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash)
            << "smThreads";
    }
    {
        SweepPoint knobs = p;
        knobs.cfg.metricsInterval = 12345;
        EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash)
            << "metricsInterval";
    }
    // The sync-profiler knobs shape the report, never the simulation
    // (the profiler is observational by construction), so they are
    // excluded like the metrics interval.
    {
        SweepPoint knobs = p;
        knobs.cfg.syncTopN = 7;
        EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash)
            << "syncTopN";
    }
    {
        SweepPoint knobs = p;
        knobs.cfg.syncStormWindow = 16;
        EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash)
            << "syncStormWindow";
    }
    // And all of them together.
    SweepPoint knobs = p;
    knobs.cfg.idleSkip = !knobs.cfg.idleSkip;
    knobs.cfg.smThreads = 7;
    knobs.cfg.metricsInterval = 12345;
    knobs.cfg.syncTopN = 7;
    knobs.cfg.syncStormWindow = 16;
    EXPECT_EQ(harness::fingerprintPoint(knobs).hash, a.hash);
}

TEST(Fingerprint, EveryResultRelevantConfigFieldChangesKey)
{
    using Mut = std::pair<const char *, void (*)(GpuConfig &)>;
    // One mutation per hashed GpuConfig field. If hashConfig ever skips
    // one of these, two configs that simulate differently would share a
    // cache record — the stale-result hazard this suite exists to catch.
    const std::vector<Mut> muts = {
        {"name", [](GpuConfig &c) { c.name = "OTHER"; }},
        {"numCores", [](GpuConfig &c) { c.numCores = 3; }},
        {"maxThreadsPerCore",
         [](GpuConfig &c) { c.maxThreadsPerCore = 1024; }},
        {"maxCtasPerCore", [](GpuConfig &c) { c.maxCtasPerCore = 4; }},
        {"numRegsPerCore", [](GpuConfig &c) { c.numRegsPerCore = 16384; }},
        {"sharedMemPerCore",
         [](GpuConfig &c) { c.sharedMemPerCore = 96 * 1024; }},
        {"numSchedulersPerCore",
         [](GpuConfig &c) { c.numSchedulersPerCore = 4; }},
        {"scheduler",
         [](GpuConfig &c) { c.scheduler = SchedulerKind::LRR; }},
        {"gtoRotatePeriod",
         [](GpuConfig &c) { c.gtoRotatePeriod = 60000; }},
        {"twoLevelGroupSize",
         [](GpuConfig &c) { c.twoLevelGroupSize = 16; }},
        {"bows.enabled",
         [](GpuConfig &c) { c.bows.enabled = !c.bows.enabled; }},
        {"bows.deprioritize",
         [](GpuConfig &c) { c.bows.deprioritize = !c.bows.deprioritize; }},
        {"bows.delayLimit", [](GpuConfig &c) { c.bows.delayLimit = 123; }},
        {"bows.adaptive",
         [](GpuConfig &c) { c.bows.adaptive = !c.bows.adaptive; }},
        {"bows.window", [](GpuConfig &c) { c.bows.window = 2000; }},
        {"bows.delayStep", [](GpuConfig &c) { c.bows.delayStep = 125; }},
        {"bows.minLimit", [](GpuConfig &c) { c.bows.minLimit = 10; }},
        {"bows.maxLimit", [](GpuConfig &c) { c.bows.maxLimit = 5000; }},
        {"bows.frac1", [](GpuConfig &c) { c.bows.frac1 = 0.25; }},
        {"bows.frac2", [](GpuConfig &c) { c.bows.frac2 = 0.75; }},
        {"ddos.enabled",
         [](GpuConfig &c) { c.ddos.enabled = !c.ddos.enabled; }},
        {"ddos.hash", [](GpuConfig &c) { c.ddos.hash = HashKind::Modulo; }},
        {"ddos.hashBits", [](GpuConfig &c) { c.ddos.hashBits = 4; }},
        {"ddos.historyLength",
         [](GpuConfig &c) { c.ddos.historyLength = 16; }},
        {"ddos.confidenceThreshold",
         [](GpuConfig &c) { c.ddos.confidenceThreshold = 2; }},
        {"ddos.sibTableEntries",
         [](GpuConfig &c) { c.ddos.sibTableEntries = 32; }},
        {"ddos.timeShare",
         [](GpuConfig &c) { c.ddos.timeShare = !c.ddos.timeShare; }},
        {"ddos.timeShareEpoch",
         [](GpuConfig &c) { c.ddos.timeShareEpoch = 500; }},
        {"spinDetect",
         [](GpuConfig &c) { c.spinDetect = SpinDetect::Oracle; }},
        {"aluLatency", [](GpuConfig &c) { c.aluLatency = 8; }},
        {"mulDivLatency", [](GpuConfig &c) { c.mulDivLatency = 32; }},
        {"sharedMemLatency", [](GpuConfig &c) { c.sharedMemLatency = 48; }},
        {"l1d.sizeBytes",
         [](GpuConfig &c) { c.l1d.sizeBytes = 32 * 1024; }},
        {"l1d.ways", [](GpuConfig &c) { c.l1d.ways = 8; }},
        {"l1d.lineBytes", [](GpuConfig &c) { c.l1d.lineBytes = 64; }},
        {"l1d.mshrs", [](GpuConfig &c) { c.l1d.mshrs = 64; }},
        {"l2.sizeBytes",
         [](GpuConfig &c) { c.l2.sizeBytes = 128 * 1024; }},
        {"l2.ways", [](GpuConfig &c) { c.l2.ways = 16; }},
        {"l2.lineBytes", [](GpuConfig &c) { c.l2.lineBytes = 64; }},
        {"l2.mshrs", [](GpuConfig &c) { c.l2.mshrs = 128; }},
        {"numL2Banks", [](GpuConfig &c) { c.numL2Banks = 8; }},
        {"l1HitLatency", [](GpuConfig &c) { c.l1HitLatency = 30; }},
        {"l2HitLatency", [](GpuConfig &c) { c.l2HitLatency = 100; }},
        {"icntLatency", [](GpuConfig &c) { c.icntLatency = 30; }},
        {"dramLatency", [](GpuConfig &c) { c.dramLatency = 200; }},
        {"dramServicePeriod",
         [](GpuConfig &c) { c.dramServicePeriod = 8; }},
        {"atomicServicePeriod",
         [](GpuConfig &c) { c.atomicServicePeriod = 8; }},
        {"numDevices", [](GpuConfig &c) { c.numDevices = 2; }},
        {"linkLatency", [](GpuConfig &c) { c.linkLatency = 1400; }},
        {"linkServicePeriod",
         [](GpuConfig &c) { c.linkServicePeriod = 8; }},
        {"switchLatency", [](GpuConfig &c) { c.switchLatency = 50; }},
        {"coreClockMhz", [](GpuConfig &c) { c.coreClockMhz = 1000.0; }},
        {"watchdogCycles",
         [](GpuConfig &c) { c.watchdogCycles = 100'000'000; }},
        {"collectStallBreakdown",
         [](GpuConfig &c) {
             c.collectStallBreakdown = !c.collectStallBreakdown;
         }},
        {"collectSpinCycles",
         [](GpuConfig &c) { c.collectSpinCycles = !c.collectSpinCycles; }},
        {"execMode",
         [](GpuConfig &c) { c.execMode = ExecMode::Functional; }},
        {"sampleWindow", [](GpuConfig &c) { c.sampleWindow = 8000; }},
        {"samplePeriod", [](GpuConfig &c) { c.samplePeriod = 20000; }},
    };

    const SweepPoint base = registryPoint();
    const std::string base_hash = harness::fingerprintPoint(base).hash;
    std::set<std::string> hashes{base_hash};
    for (const Mut &m : muts) {
        SweepPoint p = base;
        m.second(p.cfg);
        const PointKey key = harness::fingerprintPoint(p);
        ASSERT_TRUE(key.cacheable) << m.first;
        EXPECT_NE(key.hash, base_hash)
            << "mutating " << m.first << " did not change the key";
        hashes.insert(key.hash);
    }
    // All mutations land on mutually distinct keys, not just keys that
    // differ from the baseline.
    EXPECT_EQ(hashes.size(), muts.size() + 1);
}

TEST(Fingerprint, KernelScaleAndSaltChangeKey)
{
    const SweepPoint base = registryPoint();
    const std::string base_hash = harness::fingerprintPoint(base).hash;

    SweepPoint other_kernel = base;
    other_kernel.kernel = "ATM";
    EXPECT_NE(harness::fingerprintPoint(other_kernel).hash, base_hash);

    SweepPoint other_scale = base;
    other_scale.scale = 0.1;
    EXPECT_NE(harness::fingerprintPoint(other_scale).hash, base_hash);

    // The id is a human label, not content: it must NOT move the key,
    // or renaming a sweep row would orphan its cached result.
    SweepPoint renamed = base;
    renamed.id = "renamed";
    EXPECT_EQ(harness::fingerprintPoint(renamed).hash, base_hash);
}

TEST(Fingerprint, OpaquePointsAreNotCacheable)
{
    SweepPoint body = registryPoint();
    body.body = [] { return KernelStats{}; };
    const PointKey bk = harness::fingerprintPoint(body);
    EXPECT_FALSE(bk.cacheable);
    EXPECT_TRUE(bk.hash.empty());
    EXPECT_NE(bk.reason.find("body"), std::string::npos) << bk.reason;

    SweepPoint unsalted = registryPoint();
    unsalted.gpuBody = [](Gpu &) { return KernelStats{}; };
    const PointKey uk = harness::fingerprintPoint(unsalted);
    EXPECT_FALSE(uk.cacheable);
    EXPECT_NE(uk.reason.find("salt"), std::string::npos) << uk.reason;

    SweepPoint unknown = registryPoint();
    unknown.kernel = "NO_SUCH_KERNEL";
    EXPECT_FALSE(harness::fingerprintPoint(unknown).cacheable);
}

TEST(Fingerprint, SaltedGpuBodyPointsKeyOnTheSalt)
{
    SweepPoint a = registryPoint();
    a.gpuBody = [](Gpu &) { return KernelStats{}; };
    a.cacheSalt = "prog-digest/i100";
    const PointKey ka = harness::fingerprintPoint(a);
    ASSERT_TRUE(ka.cacheable) << ka.reason;

    SweepPoint b = a;
    b.cacheSalt = "prog-digest/i200";
    const PointKey kb = harness::fingerprintPoint(b);
    ASSERT_TRUE(kb.cacheable);
    EXPECT_NE(ka.hash, kb.hash);

    // Config changes still matter for salted points.
    SweepPoint c = a;
    c.cfg.bows.enabled = !c.cfg.bows.enabled;
    EXPECT_NE(harness::fingerprintPoint(c).hash, ka.hash);
}

TEST(Fingerprint, HasherIsSelfDelimiting)
{
    // "ab" + "c" vs "a" + "bc": tagged length-prefixed encoding keeps
    // the digests apart even when the concatenated bytes agree.
    FingerprintHasher h1;
    h1.add("x", std::string("ab"));
    h1.add("y", std::string("c"));
    FingerprintHasher h2;
    h2.add("x", std::string("a"));
    h2.add("y", std::string("bc"));
    EXPECT_NE(h1.hex(), h2.hex());

    // Type confusion: the same numeric value as unsigned vs double.
    FingerprintHasher h3;
    h3.add("v", std::uint64_t{1});
    FingerprintHasher h4;
    h4.add("v", 1.0);
    EXPECT_NE(h3.hex(), h4.hex());
}

// --- the object store --------------------------------------------------

TEST(ResultCache, StoreThenLookupRoundTrips)
{
    TempDir td("cache_roundtrip");
    ResultCache cache(td.str(), CacheMode::ReadWrite);
    const std::string fp(64, 'a');
    const KernelStats s = fullStats();

    KernelStats out;
    EXPECT_FALSE(cache.lookup(fp, &out));
    cache.store(fp, "point-0", s);
    ASSERT_TRUE(cache.lookup(fp, &out));
    EXPECT_EQ(harness::statsToJson(out).dump(),
              harness::statsToJson(s).dump());
    EXPECT_TRUE(fs::exists(cache.recordPath(fp)));
}

TEST(ResultCache, ReadOnlyNeverCreatesOrWrites)
{
    TempDir td("cache_ro");
    const std::string dir = (td.path / "never_created").string();
    ResultCache cache(dir, CacheMode::ReadOnly);
    const std::string fp(64, 'b');

    KernelStats out;
    EXPECT_FALSE(cache.lookup(fp, &out));
    cache.store(fp, "point-0", fullStats());  // must be a no-op
    EXPECT_FALSE(cache.lookup(fp, &out));
    EXPECT_FALSE(fs::exists(dir));
}

TEST(ResultCache, ReadOnlyServesAPrepopulatedStore)
{
    TempDir td("cache_ro_hit");
    const std::string fp(64, 'c');
    {
        ResultCache rw(td.str(), CacheMode::ReadWrite);
        rw.store(fp, "point-0", fullStats());
    }
    ResultCache ro(td.str(), CacheMode::ReadOnly);
    KernelStats out;
    ASSERT_TRUE(ro.lookup(fp, &out));
    EXPECT_EQ(harness::statsToJson(out).dump(),
              harness::statsToJson(fullStats()).dump());
}

TEST(ResultCache, CrashLeftoverTempFileIsNotARecord)
{
    TempDir td("cache_crash");
    ResultCache cache(td.str(), CacheMode::ReadWrite);
    const std::string fp(64, 'd');
    // A writer that died mid-write leaves its partial bytes under the
    // temporary name — the record path itself never exists torn.
    writeFile(cache.recordPath(fp) + ".tmp.12345",
              "{\"cache_version\":1,\"fingerp");

    KernelStats out;
    EXPECT_FALSE(cache.lookup(fp, &out));
    cache.store(fp, "point-0", fullStats());
    EXPECT_TRUE(cache.lookup(fp, &out));
}

TEST(ResultCache, CorruptAndSkewedRecordsReadAsMisses)
{
    TempDir td("cache_corrupt");
    ResultCache cache(td.str(), CacheMode::ReadWrite);
    const KernelStats s = fullStats();
    KernelStats out;

    // Garbage bytes at the record path.
    const std::string fp1(64, 'e');
    writeFile(cache.recordPath(fp1), "not json at all {{{");
    EXPECT_FALSE(cache.lookup(fp1, &out));
    // ...and rw recovery: the recomputed result overwrites the garbage.
    cache.store(fp1, "point-0", s);
    ASSERT_TRUE(cache.lookup(fp1, &out));
    EXPECT_EQ(harness::statsToJson(out).dump(),
              harness::statsToJson(s).dump());

    // A structurally valid record from an incompatible schema version.
    const std::string fp2(64, 'f');
    Json skew = Json::object();
    skew.set("cache_version", harness::kResultSchemaVersion + 1);
    skew.set("fingerprint", fp2);
    skew.set("id", "point-0");
    skew.set("stats", harness::statsToJson(s));
    writeFile(cache.recordPath(fp2), skew.dump());
    EXPECT_FALSE(cache.lookup(fp2, &out));

    // A record whose embedded fingerprint does not echo its name.
    const std::string fp3(64, '0');
    Json echo = Json::object();
    echo.set("cache_version", harness::kResultSchemaVersion);
    echo.set("fingerprint", std::string(64, '1'));
    echo.set("id", "point-0");
    echo.set("stats", harness::statsToJson(s));
    writeFile(cache.recordPath(fp3), echo.dump());
    EXPECT_FALSE(cache.lookup(fp3, &out));

    // A record whose stats block is missing fields.
    const std::string fp4(64, '2');
    Json bad = Json::object();
    bad.set("cache_version", harness::kResultSchemaVersion);
    bad.set("fingerprint", fp4);
    bad.set("id", "point-0");
    bad.set("stats", Json::object());
    writeFile(cache.recordPath(fp4), bad.dump());
    EXPECT_FALSE(cache.lookup(fp4, &out));
}

TEST(ResultCache, ModeParsingAndNames)
{
    CacheMode m = CacheMode::Off;
    EXPECT_TRUE(harness::parseCacheMode("off", &m));
    EXPECT_EQ(m, CacheMode::Off);
    EXPECT_TRUE(harness::parseCacheMode("ro", &m));
    EXPECT_EQ(m, CacheMode::ReadOnly);
    EXPECT_TRUE(harness::parseCacheMode("rw", &m));
    EXPECT_EQ(m, CacheMode::ReadWrite);
    EXPECT_FALSE(harness::parseCacheMode("readwrite", &m));
    EXPECT_FALSE(harness::parseCacheMode("", &m));
    EXPECT_STREQ(harness::toString(CacheMode::Off), "off");
    EXPECT_STREQ(harness::toString(CacheMode::ReadOnly), "ro");
    EXPECT_STREQ(harness::toString(CacheMode::ReadWrite), "rw");
}

// --- the resume journal ------------------------------------------------

TEST(ResumeJournal, RecordsReplayOnResume)
{
    TempDir td("journal_replay");
    const std::string path = (td.path / "sweep.jsonl").string();
    const KernelStats s = fullStats();
    {
        ResumeJournal j(path, /*resume=*/false, /*writable=*/true);
        EXPECT_EQ(j.loadedEntries(), 0u);
        j.record("p0", "key0", s);
        j.record("p1", "key1", s);
    }
    ResumeJournal j(path, /*resume=*/true, /*writable=*/true);
    EXPECT_EQ(j.loadedEntries(), 2u);
    KernelStats out;
    ASSERT_TRUE(j.lookup("p0", "key0", &out));
    EXPECT_EQ(harness::statsToJson(out).dump(),
              harness::statsToJson(s).dump());
    // Key mismatch (the sweep definition changed) re-simulates.
    EXPECT_FALSE(j.lookup("p0", "other-key", &out));
    EXPECT_FALSE(j.lookup("p2", "key0", &out));
}

TEST(ResumeJournal, ToleratesATornFinalLine)
{
    TempDir td("journal_torn");
    const std::string path = (td.path / "sweep.jsonl").string();
    {
        ResumeJournal j(path, false, true);
        j.record("p0", "key0", fullStats());
        j.record("p1", "key1", fullStats());
    }
    // A crash mid-append leaves a truncated last line.
    std::ofstream(path, std::ios::app) << "{\"id\":\"p2\",\"key\":\"ke";
    ResumeJournal j(path, true, true);
    EXPECT_EQ(j.loadedEntries(), 2u);
    KernelStats out;
    EXPECT_TRUE(j.lookup("p1", "key1", &out));
    EXPECT_FALSE(j.lookup("p2", "key2", &out));
}

TEST(ResumeJournal, FreshRunDiscardsThePreviousJournal)
{
    TempDir td("journal_fresh");
    const std::string path = (td.path / "sweep.jsonl").string();
    {
        ResumeJournal j(path, false, true);
        j.record("p0", "key0", fullStats());
    }
    // resume=false: the stale journal must not leak into this run.
    ResumeJournal fresh(path, false, true);
    EXPECT_EQ(fresh.loadedEntries(), 0u);
    KernelStats out;
    EXPECT_FALSE(fresh.lookup("p0", "key0", &out));
}

// --- through the sweep runner ------------------------------------------

TEST(CacheIntegration, WarmRunServesEveryPointBitIdentically)
{
    TempDir td("integration_warm");
    const std::vector<SweepPoint> points = smallSweep();

    ResultCache cold(td.str(), CacheMode::ReadWrite);
    SweepRunner cold_runner(2);
    cold_runner.setCache(&cold);
    const std::vector<SweepResult> first = cold_runner.run(points);
    const CacheCounters cc = cold.counters();
    EXPECT_EQ(cc.hits, 0u);
    EXPECT_EQ(cc.misses, points.size());
    EXPECT_EQ(cc.stored, points.size());
    EXPECT_EQ(cc.bypassed, 0u);

    ResultCache warm(td.str(), CacheMode::ReadWrite);
    SweepRunner warm_runner(2);
    warm_runner.setCache(&warm);
    const std::vector<SweepResult> second = warm_runner.run(points);
    const CacheCounters wc = warm.counters();
    EXPECT_EQ(wc.hits, points.size());
    EXPECT_EQ(wc.misses, 0u);
    EXPECT_EQ(wc.stored, 0u);

    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(first[i].ok);
        ASSERT_TRUE(second[i].ok);
        EXPECT_EQ(first[i].source, SweepResult::Source::Simulated);
        EXPECT_EQ(second[i].source, SweepResult::Source::CacheHit);
        EXPECT_EQ(harness::statsToJson(second[i].stats).dump(),
                  harness::statsToJson(first[i].stats).dump())
            << points[i].id;
    }

    // The artifact's cache block reflects the counters, and cold/warm
    // points arrays agree byte-for-byte.
    const Json cold_doc =
        harness::sweepToJson("unit", 2, points, first, &cold);
    const Json warm_doc =
        harness::sweepToJson("unit", 2, points, second, &warm);
    EXPECT_EQ(warm_doc.at("cache").at("hits").asInt(),
              static_cast<std::int64_t>(points.size()));
    EXPECT_EQ(cold_doc.at("points").dump(), warm_doc.at("points").dump());
}

TEST(CacheIntegration, ReadOnlyMissSimulatesWithoutStoring)
{
    TempDir td("integration_ro");
    std::vector<SweepPoint> points = {registryPoint()};

    ResultCache ro(td.str(), CacheMode::ReadOnly);
    SweepRunner runner(1);
    runner.setCache(&ro);
    const std::vector<SweepResult> results = runner.run(points);
    ASSERT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].source, SweepResult::Source::Simulated);
    const CacheCounters c = ro.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.stored, 0u);
    EXPECT_FALSE(fs::exists(td.path / "objects"));
}

TEST(CacheIntegration, SideOutputsAndOpaquePointsBypass)
{
    TempDir td("integration_bypass");
    std::vector<SweepPoint> points;
    SweepPoint traced = registryPoint("traced");
    traced.tracePath = (td.path / "trace.json").string();
    points.push_back(traced);
    SweepPoint opaque = registryPoint("opaque");
    opaque.body = [] {
        KernelStats s;
        s.kernel = "custom";
        s.cycles = 42;
        return s;
    };
    points.push_back(opaque);

    ResultCache cache(td.str(), CacheMode::ReadWrite);
    SweepRunner runner(1);
    runner.setCache(&cache);
    const std::vector<SweepResult> results = runner.run(points);
    ASSERT_TRUE(results[0].ok);
    ASSERT_TRUE(results[1].ok);
    const CacheCounters c = cache.counters();
    EXPECT_EQ(c.bypassed, 2u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(c.stored, 0u);
    // The side output itself is still produced.
    EXPECT_TRUE(fs::exists(traced.tracePath));
}

TEST(CacheIntegration, ResumeReplaysOnlyCompletedPoints)
{
    TempDir td("integration_resume");
    const std::vector<SweepPoint> points = smallSweep();

    // Interrupted run: only the first two points completed.
    {
        ResultCache cache(td.str(), CacheMode::ReadWrite);
        ResumeJournal journal(cache.journalPath("unit"), false, true);
        SweepRunner runner(1);
        runner.setCache(&cache);
        runner.setJournal(&journal);
        const std::vector<SweepPoint> half(points.begin(),
                                           points.begin() + 2);
        runner.run(half);
    }

    ResultCache cache(td.str(), CacheMode::ReadWrite);
    ResumeJournal journal(cache.journalPath("unit"), true, true);
    EXPECT_EQ(journal.loadedEntries(), 2u);
    SweepRunner runner(1);
    runner.setCache(&cache);
    runner.setJournal(&journal);
    const std::vector<SweepResult> results = runner.run(points);
    ASSERT_EQ(results.size(), points.size());
    EXPECT_EQ(results[0].source, SweepResult::Source::Resumed);
    EXPECT_EQ(results[1].source, SweepResult::Source::Resumed);
    EXPECT_EQ(results[2].source, SweepResult::Source::Simulated);
    EXPECT_EQ(results[3].source, SweepResult::Source::Simulated);
    const CacheCounters c = cache.counters();
    EXPECT_EQ(c.resumed, 2u);
    EXPECT_EQ(c.misses, 2u);
    EXPECT_EQ(c.stored, 2u);
    EXPECT_EQ(c.hits + c.misses + c.bypassed + c.resumed, points.size());
}

TEST(CacheIntegration, NonCacheablePointsStillResumeViaWeakKey)
{
    TempDir td("integration_weak");
    SweepPoint opaque = registryPoint("opaque");
    opaque.body = [] {
        KernelStats s;
        s.kernel = "custom";
        s.cycles = 42;
        return s;
    };
    const std::vector<SweepPoint> points = {opaque};

    {
        ResultCache cache(td.str(), CacheMode::ReadWrite);
        ResumeJournal journal(cache.journalPath("unit"), false, true);
        SweepRunner runner(1);
        runner.setCache(&cache);
        runner.setJournal(&journal);
        const std::vector<SweepResult> first = runner.run(points);
        ASSERT_TRUE(first[0].ok);
        // Simulated (the object store cannot key it)...
        EXPECT_EQ(cache.counters().bypassed, 1u);
        EXPECT_EQ(cache.counters().stored, 0u);
    }
    // ...but journaled under the weak (config, id, scale) key, so a
    // resumed sweep does not redo it.
    ResultCache cache(td.str(), CacheMode::ReadWrite);
    ResumeJournal journal(cache.journalPath("unit"), true, true);
    EXPECT_EQ(journal.loadedEntries(), 1u);
    SweepRunner runner(1);
    runner.setCache(&cache);
    runner.setJournal(&journal);
    const std::vector<SweepResult> again = runner.run(points);
    ASSERT_TRUE(again[0].ok);
    EXPECT_EQ(again[0].source, SweepResult::Source::Resumed);
    EXPECT_EQ(again[0].stats.cycles, 42u);
    EXPECT_EQ(cache.counters().resumed, 1u);
}

TEST(CacheIntegration, FailedPointsAreNeitherStoredNorJournaled)
{
    TempDir td("integration_fail");
    SweepPoint doomed = registryPoint("doomed");
    doomed.cfg.watchdogCycles = 10;  // spinning kernel cannot finish
    const std::vector<SweepPoint> points = {doomed};

    {
        ResultCache cache(td.str(), CacheMode::ReadWrite);
        ResumeJournal journal(cache.journalPath("unit"), false, true);
        SweepRunner runner(1);
        runner.setCache(&cache);
        runner.setJournal(&journal);
        const std::vector<SweepResult> results = runner.run(points);
        ASSERT_FALSE(results[0].ok);
        EXPECT_EQ(cache.counters().stored, 0u);
    }
    ResumeJournal journal(ResultCache(td.str(), CacheMode::ReadWrite)
                              .journalPath("unit"),
                          true, true);
    EXPECT_EQ(journal.loadedEntries(), 0u);
}

}  // namespace
}  // namespace bowsim
