#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"
#include "src/kernels/hashtable.hpp"
#include "src/sim/gpu.hpp"
#include "src/trace/chrome_exporter.hpp"
#include "src/trace/ring_recorder.hpp"

/**
 * Trace subsystem tests: ring-recorder retention semantics, the binary
 * round trip, and the Chrome exporter's structural properties on a real
 * traced simulation — monotone per-track timestamps, balanced B/E
 * interval pairs, and a parseable document — checked through the same
 * harness::checkChromeTrace logic the json_check CLI runs.
 */

namespace bowsim {
namespace {

using trace::EventKind;
using trace::RingRecorder;
using trace::StallCause;
using trace::TraceEvent;

TraceEvent
makeEvent(Cycle cycle, EventKind kind, std::uint64_t a0 = 0)
{
    TraceEvent ev;
    ev.cycle = cycle;
    ev.sm = 0;
    ev.warp = 0;
    ev.kind = kind;
    ev.a0 = a0;
    return ev;
}

TEST(TraceStrings, EveryKindAndCauseHasAName)
{
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::kCount); ++k) {
        const char *name = toString(static_cast<EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
    }
    for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
        const char *name = toString(static_cast<StallCause>(c));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
    }
}

TEST(TraceStrings, IntervalPairsShareOneChromeName)
{
    // Chrome matches B/E durations by name, so each Enter/Exit pair must
    // export identically.
    EXPECT_STREQ(toString(EventKind::BackoffEnter),
                 toString(EventKind::BackoffExit));
    EXPECT_STREQ(toString(EventKind::BarrierEnter),
                 toString(EventKind::BarrierExit));
}

TEST(RingRecorderTest, RetainsMostRecentWindow)
{
    RingRecorder rec(8);
    for (Cycle c = 0; c < 20; ++c)
        rec.emit(makeEvent(c, EventKind::Issue, c));
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);
    EXPECT_EQ(rec.total(), 20u);
    std::vector<TraceEvent> events = rec.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, 12 + i) << "index " << i;
        EXPECT_EQ(events[i].a0, 12 + i);
    }
}

TEST(RingRecorderTest, BinaryRoundTripPreservesEverything)
{
    RingRecorder rec(64);
    rec.emit(makeEvent(1, EventKind::Fetch, 10));
    rec.emit(makeEvent(2, EventKind::L1Miss, 0x1234));
    TraceEvent full = makeEvent(3, EventKind::AtomicSerialize, 0xdead);
    full.sm = 7;
    full.warp = -1;
    full.a1 = 42;
    rec.emit(full);

    std::stringstream buf;
    rec.saveBinary(buf);
    std::vector<TraceEvent> back = RingRecorder::loadBinary(buf);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].kind, EventKind::Fetch);
    EXPECT_EQ(back[1].a0, 0x1234u);
    EXPECT_EQ(back[2].sm, 7u);
    EXPECT_EQ(back[2].warp, -1);
    EXPECT_EQ(back[2].a1, 42u);
}

TEST(RingRecorderTest, LoadBinaryRejectsGarbage)
{
    std::stringstream buf("not a trace file at all");
    EXPECT_THROW(RingRecorder::loadBinary(buf), FatalError);
}

/** Runs the high-contention hashtable with a recorder attached. */
std::vector<TraceEvent>
traceHashtable(bool bows)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.bows.enabled = bows;
    Gpu gpu(cfg);
    RingRecorder rec;
    gpu.setTraceSink(&rec);
    HashtableParams p;
    p.insertions = 512;
    p.buckets = 16;
    p.ctas = 4;
    p.threadsPerCta = 64;
    makeHashtable(p)->run(gpu);
    EXPECT_EQ(rec.dropped(), 0u);
    return rec.events();
}

TEST(TracedRun, EmitsTheExpectedEventMix)
{
    std::vector<TraceEvent> events = traceHashtable(/*bows=*/true);
    ASSERT_FALSE(events.empty());

    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(EventKind::kCount), 0);
    for (const TraceEvent &ev : events)
        ++counts[static_cast<std::size_t>(ev.kind)];
    auto count = [&](EventKind k) {
        return counts[static_cast<std::size_t>(k)];
    };

    // Core pipeline: every issue fetched, and ALU/load destinations wrote
    // back. A contended spin loop stalls constantly.
    EXPECT_GT(count(EventKind::Fetch), 0u);
    EXPECT_EQ(count(EventKind::Fetch), count(EventKind::Issue));
    EXPECT_GT(count(EventKind::Writeback), 0u);
    EXPECT_GT(count(EventKind::IssueStall), 0u);
    // Memory: lock acquires are atomics serializing at the L2 banks.
    EXPECT_GT(count(EventKind::AtomicSerialize), 0u);
    EXPECT_GT(count(EventKind::L2Miss), 0u);
    // DDOS confirms the spin branch; BOWS then backs warps off.
    EXPECT_GT(count(EventKind::SibConfirm), 0u);
    EXPECT_GT(count(EventKind::BackoffEnter), 0u);
    EXPECT_EQ(count(EventKind::BackoffEnter), count(EventKind::BackoffExit));
}

TEST(TracedRun, TimestampsAreGloballyMonotonic)
{
    std::vector<TraceEvent> events = traceHashtable(/*bows=*/true);
    ASSERT_FALSE(events.empty());
    for (std::size_t i = 1; i < events.size(); ++i) {
        ASSERT_GE(events[i].cycle, events[i - 1].cycle)
            << "event " << i << " went backwards";
    }
}

TEST(TracedRun, ChromeExportPassesThePropertyChecker)
{
    std::vector<TraceEvent> events = traceHashtable(/*bows=*/true);
    std::ostringstream out;
    trace::ChromeTraceMeta meta;
    meta.label = "test";
    trace::exportChromeTrace(events, out, meta);

    harness::Json doc = harness::Json::parse(out.str());
    harness::CheckResult res = harness::checkChromeTrace(doc);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_EQ(doc.at("metadata").at("label").asString(), "test");
    std::set<std::uint32_t> sms;
    for (const TraceEvent &ev : events)
        sms.insert(ev.sm);
    // One process_name metadata record per SM that appears in the trace.
    EXPECT_EQ(doc.at("traceEvents").size(), events.size() + sms.size());
}

TEST(TracedRun, PropertyCheckerRejectsCorruptedTraces)
{
    using harness::Json;
    // Unmatched E.
    Json doc = Json::object();
    Json arr = Json::array();
    Json ev = Json::object();
    ev.set("name", "backoff");
    ev.set("ph", "E");
    ev.set("ts", 5);
    ev.set("pid", 0);
    ev.set("tid", 3);
    arr.push(ev);
    doc.set("traceEvents", arr);
    EXPECT_FALSE(harness::checkChromeTrace(doc).ok);

    // Backwards timestamp on one track.
    Json doc2 = Json::object();
    Json arr2 = Json::array();
    for (int ts : {9, 4}) {
        Json e = Json::object();
        e.set("name", "issue");
        e.set("ph", "i");
        e.set("ts", ts);
        e.set("pid", 0);
        e.set("tid", 0);
        arr2.push(std::move(e));
    }
    doc2.set("traceEvents", std::move(arr2));
    EXPECT_FALSE(harness::checkChromeTrace(doc2).ok);

    // Unclosed B at end of document.
    Json doc3 = Json::object();
    Json arr3 = Json::array();
    Json b = Json::object();
    b.set("name", "barrier");
    b.set("ph", "B");
    b.set("ts", 1);
    b.set("pid", 0);
    b.set("tid", 0);
    arr3.push(std::move(b));
    doc3.set("traceEvents", std::move(arr3));
    EXPECT_FALSE(harness::checkChromeTrace(doc3).ok);
}

TEST(StallBreakdown, GrandTotalMatchesResidentWarpCycles)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.bows.enabled = true;
    cfg.collectStallBreakdown = true;
    Gpu gpu(cfg);
    HashtableParams p;
    p.insertions = 512;
    p.buckets = 16;
    p.ctas = 4;
    p.threadsPerCta = 64;
    KernelStats s = makeHashtable(p)->run(gpu);

    ASSERT_TRUE(s.hasStallBreakdown());
    auto totals = s.stallTotals();
    std::uint64_t grand = 0;
    for (std::uint64_t t : totals)
        grand += t;
    // Every resident warp contributes exactly one cause per SM-cycle.
    EXPECT_EQ(grand, s.residentWarpCycles);
    EXPECT_GT(totals[static_cast<unsigned>(StallCause::Issued)], 0u);
    // A contended lock loop must show scoreboard and backoff stalls.
    EXPECT_GT(totals[static_cast<unsigned>(StallCause::Scoreboard)], 0u);
    EXPECT_GT(totals[static_cast<unsigned>(StallCause::Backoff)], 0u);

    std::string table = stallTable(s);
    EXPECT_NE(table.find("scoreboard"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(StallBreakdown, OffByDefault)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    Gpu gpu(cfg);
    HashtableParams p;
    p.insertions = 256;
    p.buckets = 64;
    p.ctas = 2;
    p.threadsPerCta = 64;
    KernelStats s = makeHashtable(p)->run(gpu);
    EXPECT_FALSE(s.hasStallBreakdown());
    EXPECT_EQ(stallTable(s), "");
}

}  // namespace
}  // namespace bowsim
