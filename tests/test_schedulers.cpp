#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sched/cawa.hpp"
#include "src/sched/gto.hpp"
#include "src/sched/lrr.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sched/two_level.hpp"

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

namespace bowsim {
namespace {

std::vector<std::unique_ptr<Warp>>
makeWarps(unsigned n)
{
    std::vector<std::unique_ptr<Warp>> warps;
    for (unsigned i = 0; i < n; ++i) {
        warps.push_back(
            std::make_unique<Warp>(i, 0, i, i, 8, 2, kFullMask));
    }
    return warps;
}

std::vector<Warp *>
raw(const std::vector<std::unique_ptr<Warp>> &warps)
{
    std::vector<Warp *> out;
    for (const auto &w : warps)
        out.push_back(w.get());
    return out;
}

std::vector<unsigned>
ids(const std::vector<Warp *> &warps)
{
    std::vector<unsigned> out;
    for (const Warp *w : warps)
        out.push_back(w->id());
    return out;
}

// ------------------------------------------------------------------ LRR

TEST(Lrr, InitialOrderIsById)
{
    auto owned = makeWarps(4);
    auto list = raw(owned);
    LrrScheduler lrr;
    lrr.order(list, 0);
    EXPECT_EQ(ids(list), (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Lrr, RotatesPastLastIssued)
{
    auto owned = makeWarps(4);
    auto list = raw(owned);
    LrrScheduler lrr;
    lrr.notifyIssued(owned[1].get(), 0);
    lrr.order(list, 1);
    EXPECT_EQ(ids(list), (std::vector<unsigned>{2, 3, 0, 1}));
}

TEST(Lrr, FullRotationIsFair)
{
    auto owned = makeWarps(3);
    LrrScheduler lrr;
    std::vector<unsigned> issued;
    for (int c = 0; c < 6; ++c) {
        auto list = raw(owned);
        lrr.order(list, c);
        lrr.notifyIssued(list.front(), c);
        issued.push_back(list.front()->id());
    }
    EXPECT_EQ(issued, (std::vector<unsigned>{0, 1, 2, 0, 1, 2}));
}

TEST(Lrr, FinishedWarpDropsFromRotation)
{
    auto owned = makeWarps(3);
    LrrScheduler lrr;
    lrr.notifyIssued(owned[2].get(), 0);
    lrr.notifyFinished(owned[2].get());
    std::vector<Warp *> list = {owned[0].get(), owned[1].get()};
    lrr.order(list, 1);
    EXPECT_EQ(ids(list), (std::vector<unsigned>{0, 1}));
}

// ------------------------------------------------------------------ GTO

TEST(Gto, OldestFirstWithoutGreedy)
{
    auto owned = makeWarps(4);
    owned[0]->setAge(30);
    owned[1]->setAge(10);
    owned[2]->setAge(20);
    owned[3]->setAge(40);
    auto list = raw(owned);
    GtoScheduler gto(0);
    gto.order(list, 0);
    EXPECT_EQ(ids(list), (std::vector<unsigned>{1, 2, 0, 3}));
}

TEST(Gto, GreedyKeepsLastIssuedOnTop)
{
    auto owned = makeWarps(4);
    auto list = raw(owned);
    GtoScheduler gto(0);
    gto.notifyIssued(owned[3].get(), 0);
    gto.order(list, 1);
    EXPECT_EQ(list.front()->id(), 3u);
    // The rest stay oldest-first.
    EXPECT_EQ(ids(list), (std::vector<unsigned>{3, 0, 1, 2}));
}

TEST(Gto, RotationShiftsAgePriorityOverTime)
{
    auto owned = makeWarps(4);
    GtoScheduler gto(1000);
    auto list = raw(owned);
    gto.order(list, 500);  // rotation bucket 0
    EXPECT_EQ(list.front()->id(), 0u);
    list = raw(owned);
    gto.order(list, 1500);  // rotation bucket 1
    EXPECT_EQ(list.front()->id(), 1u);
    list = raw(owned);
    gto.order(list, 2500);
    EXPECT_EQ(list.front()->id(), 2u);
}

TEST(Gto, FinishedGreedyWarpForgotten)
{
    auto owned = makeWarps(2);
    GtoScheduler gto(0);
    gto.notifyIssued(owned[1].get(), 0);
    gto.notifyFinished(owned[1].get());
    std::vector<Warp *> list = {owned[0].get()};
    gto.order(list, 1);
    EXPECT_EQ(list.front()->id(), 0u);
}

// ----------------------------------------------------------------- CAWA

TEST(Cawa, PrioritizesHighestCriticality)
{
    auto owned = makeWarps(3);
    // Warp 2 looks critical: many estimated remaining instructions and
    // lots of accumulated stall.
    owned[2]->cawa().estRemaining = 1000;
    owned[2]->cawa().stallCycles = 5000;
    owned[0]->cawa().estRemaining = 10;
    owned[1]->cawa().estRemaining = 10;
    auto list = raw(owned);
    CawaScheduler cawa;
    cawa.order(list, 0);
    EXPECT_EQ(list.front()->id(), 2u);
}

TEST(Cawa, SpinningWarpGainsPriorityAsEstimateGrows)
{
    // The paper's pathology: taken backward branches inflate nInst, so a
    // spinning warp's criticality overtakes a steadily-working warp.
    auto owned = makeWarps(2);
    CawaState &spinner = owned[0]->cawa();
    CawaState &worker = owned[1]->cawa();
    spinner.estRemaining = 50;
    worker.estRemaining = 50;
    spinner.issued = worker.issued = 100;
    spinner.activeCycles = worker.activeCycles = 1000;

    CawaScheduler cawa;
    auto list = raw(owned);
    cawa.order(list, 0);
    // Equal criticality: oldest (warp 0) leads; but now the spinner keeps
    // re-running its loop and its estimate balloons.
    for (int i = 0; i < 100; ++i)
        spinner.estRemaining += 5;  // backward-branch inflation
    list = raw(owned);
    cawa.order(list, 1);
    EXPECT_EQ(list.front()->id(), 0u);
    EXPECT_GT(spinner.criticality(), worker.criticality());
}

TEST(Cawa, CriticalityFormulaMatchesPaper)
{
    CawaState s;
    s.estRemaining = 100;
    s.issued = 50;
    s.activeCycles = 200;  // CPIavg = 4
    s.stallCycles = 30;
    EXPECT_DOUBLE_EQ(s.criticality(), 100 * 4.0 + 30);
}

TEST(Cawa, GreedyComponentKeepsLastIssued)
{
    auto owned = makeWarps(3);
    owned[0]->cawa().estRemaining = 100;
    auto list = raw(owned);
    CawaScheduler cawa;
    cawa.notifyIssued(owned[2].get(), 0);
    cawa.order(list, 1);
    EXPECT_EQ(list.front()->id(), 2u);
}

// ------------------------------------------------------------ TwoLevel

TEST(TwoLevel, ActiveGroupLeadsTheOrder)
{
    auto owned = makeWarps(16);
    TwoLevelScheduler tl(4);
    // Issue from warp 9: group 2 becomes active.
    tl.notifyIssued(owned[9].get(), 0);
    auto list = raw(owned);
    tl.order(list, 1);
    // The first four entries are all of group 2 (ids 8..11).
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(list[i]->id() / 4, 2u) << "position " << i;
    }
    // Round-robin inside the group: warp after 9 leads.
    EXPECT_EQ(list[0]->id(), 10u);
}

TEST(TwoLevel, GroupsFollowInWrapOrder)
{
    auto owned = makeWarps(12);
    TwoLevelScheduler tl(4);
    tl.notifyIssued(owned[8].get(), 0);  // active group = 2 (last)
    auto list = raw(owned);
    tl.order(list, 1);
    // Order of groups: 2, then 0, then 1.
    EXPECT_EQ(list[0]->id() / 4, 2u);
    EXPECT_EQ(list[4]->id() / 4, 0u);
    EXPECT_EQ(list[8]->id() / 4, 1u);
}

TEST(TwoLevel, RunsAKernelCorrectly)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.scheduler = SchedulerKind::TwoLevel;
    Gpu gpu(cfg);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel count
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
    gpu.launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
               {static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 4 * 256);
}

// -------------------------------------------------------------- factory

TEST(SchedulerFactory, CreatesConfiguredKind)
{
    GpuConfig cfg;
    cfg.scheduler = SchedulerKind::LRR;
    EXPECT_STREQ(makeScheduler(cfg)->name(), "LRR");
    cfg.scheduler = SchedulerKind::GTO;
    EXPECT_STREQ(makeScheduler(cfg)->name(), "GTO");
    cfg.scheduler = SchedulerKind::CAWA;
    EXPECT_STREQ(makeScheduler(cfg)->name(), "CAWA");
    cfg.scheduler = SchedulerKind::TwoLevel;
    EXPECT_STREQ(makeScheduler(cfg)->name(), "TwoLevel");
}

}  // namespace
}  // namespace bowsim
