#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/json.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/litmus.hpp"

/**
 * @file
 * The minimal JSON layer used for BENCH_*.json artifacts: deterministic
 * (insertion-ordered) dumps, parse/dump round trips, string escaping,
 * and loud failures on malformed input.
 */

namespace bowsim {
namespace {

using harness::Json;

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", Json(1));
    o.set("alpha", Json(2));
    o.set("mid", Json(3));
    EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{1234567890123456789ull}).dump(),
              "1234567890123456789");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json().dump(), "null");
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string tricky = "quote\" slash\\ tab\t newline\n ctrl\x01";
    const std::string text = Json(tricky).dump();
    EXPECT_EQ(Json::parse(text).asString(), tricky);
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text =
        R"({"a":[1,2.5,true,null],"b":{"nested":"x"},"c":-3})";
    EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ParseAccessors)
{
    const Json doc = Json::parse(R"({"n":42,"f":1.5,"s":"v","arr":[7]})");
    EXPECT_EQ(doc.at("n").asInt(), 42);
    EXPECT_DOUBLE_EQ(doc.at("f").asDouble(), 1.5);
    EXPECT_EQ(doc.at("s").asString(), "v");
    ASSERT_EQ(doc.at("arr").size(), 1u);
    EXPECT_EQ(doc.at("arr").at(0).asInt(), 7);
    EXPECT_TRUE(doc.has("n"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), FatalError);
}

TEST(Json, MissingKeyThrows)
{
    const Json doc = Json::parse(R"({"a":1})");
    EXPECT_THROW(doc.at("b"), FatalError);
}

// --- json_check --litmus ----------------------------------------------

/** A small but complete litmus document: tas x LRR x {base,bows} x
 *  under, every cell marked completed. */
Json
litmusDoc()
{
    harness::LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {sync::Primitive::TasLock};
    opts.schedulers = {SchedulerKind::LRR};
    opts.bowsModes = {false, true};
    opts.occupancies = {harness::OccupancyLevel::Under};
    const std::vector<harness::LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<harness::LitmusCellResult> results(cells.size());
    for (harness::LitmusCellResult &r : results)
        r.outcome = harness::SyncOutcome::Completed;
    return harness::litmusToJson("litmus", opts, cells, results);
}

/** First-occurrence textual surgery for building broken documents. */
Json
mutated(const Json &doc, const std::string &from, const std::string &to)
{
    std::string text = doc.dump();
    const std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return Json::parse(text);
}

TEST(JsonCheckLitmus, ValidMatrixPasses)
{
    const harness::CheckResult r =
        harness::checkLitmusMatrix(litmusDoc(), 2);
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_NE(r.message.find("2 cells"), std::string::npos);
    EXPECT_NE(r.message.find("completed"), std::string::npos);
}

TEST(JsonCheckLitmus, ExpectedCellCountMismatchFails)
{
    const harness::CheckResult r =
        harness::checkLitmusMatrix(litmusDoc(), 90);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("expected 90"), std::string::npos);
}

TEST(JsonCheckLitmus, MissingHeaderFieldFails)
{
    // Strip the header's watchdog budget (the cell configs keep
    // theirs; only the first occurrence is the header's).
    const Json doc = mutated(litmusDoc(), "\"watchdog_cycles\":3000000,",
                             "");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("watchdog_cycles"), std::string::npos);
}

TEST(JsonCheckLitmus, IllegalOutcomeFails)
{
    const Json doc = mutated(litmusDoc(), "\"outcome\":\"completed\"",
                             "\"outcome\":\"exploded\"");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("exploded"), std::string::npos);
}

TEST(JsonCheckLitmus, ExecModeDisagreementFails)
{
    // Flip the header's exec_mode; every cell config now disagrees.
    const Json doc = mutated(litmusDoc(), "\"exec_mode\":\"cycle\"",
                             "\"exec_mode\":\"functional\"");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("exec_mode"), std::string::npos);
}

TEST(JsonCheckLitmus, DuplicateCellFails)
{
    // Rewrite the base cell into a second bows cell (flag and config
    // kept consistent so the duplicate check is what fires).
    Json doc = mutated(litmusDoc(), "\"bows\":false",
                       "\"bows\":true");
    doc = mutated(doc, "\"bows_enabled\":false",
                  "\"bows_enabled\":true");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("duplicate"), std::string::npos);
}

TEST(JsonCheckLitmus, ConfigBowsMismatchFails)
{
    // Flag flipped but config left alone: self-description broken.
    const Json doc = mutated(litmusDoc(), "\"bows\":false",
                             "\"bows\":true");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("bows_enabled"), std::string::npos);
}

}  // namespace
}  // namespace bowsim
