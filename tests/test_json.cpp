#include <gtest/gtest.h>

#include <string>

#include "src/common/log.hpp"
#include "src/harness/json.hpp"

/**
 * @file
 * The minimal JSON layer used for BENCH_*.json artifacts: deterministic
 * (insertion-ordered) dumps, parse/dump round trips, string escaping,
 * and loud failures on malformed input.
 */

namespace bowsim {
namespace {

using harness::Json;

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", Json(1));
    o.set("alpha", Json(2));
    o.set("mid", Json(3));
    EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{1234567890123456789ull}).dump(),
              "1234567890123456789");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json().dump(), "null");
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string tricky = "quote\" slash\\ tab\t newline\n ctrl\x01";
    const std::string text = Json(tricky).dump();
    EXPECT_EQ(Json::parse(text).asString(), tricky);
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text =
        R"({"a":[1,2.5,true,null],"b":{"nested":"x"},"c":-3})";
    EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ParseAccessors)
{
    const Json doc = Json::parse(R"({"n":42,"f":1.5,"s":"v","arr":[7]})");
    EXPECT_EQ(doc.at("n").asInt(), 42);
    EXPECT_DOUBLE_EQ(doc.at("f").asDouble(), 1.5);
    EXPECT_EQ(doc.at("s").asString(), "v");
    ASSERT_EQ(doc.at("arr").size(), 1u);
    EXPECT_EQ(doc.at("arr").at(0).asInt(), 7);
    EXPECT_TRUE(doc.has("n"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), FatalError);
}

TEST(Json, MissingKeyThrows)
{
    const Json doc = Json::parse(R"({"a":1})");
    EXPECT_THROW(doc.at("b"), FatalError);
}

}  // namespace
}  // namespace bowsim
