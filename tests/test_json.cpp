#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/json.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/litmus.hpp"

/**
 * @file
 * The minimal JSON layer used for BENCH_*.json artifacts: deterministic
 * (insertion-ordered) dumps, parse/dump round trips, string escaping,
 * and loud failures on malformed input.
 */

namespace bowsim {
namespace {

using harness::Json;

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", Json(1));
    o.set("alpha", Json(2));
    o.set("mid", Json(3));
    EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{1234567890123456789ull}).dump(),
              "1234567890123456789");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json().dump(), "null");
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string tricky = "quote\" slash\\ tab\t newline\n ctrl\x01";
    const std::string text = Json(tricky).dump();
    EXPECT_EQ(Json::parse(text).asString(), tricky);
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text =
        R"({"a":[1,2.5,true,null],"b":{"nested":"x"},"c":-3})";
    EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ParseAccessors)
{
    const Json doc = Json::parse(R"({"n":42,"f":1.5,"s":"v","arr":[7]})");
    EXPECT_EQ(doc.at("n").asInt(), 42);
    EXPECT_DOUBLE_EQ(doc.at("f").asDouble(), 1.5);
    EXPECT_EQ(doc.at("s").asString(), "v");
    ASSERT_EQ(doc.at("arr").size(), 1u);
    EXPECT_EQ(doc.at("arr").at(0).asInt(), 7);
    EXPECT_TRUE(doc.has("n"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), FatalError);
}

TEST(Json, MissingKeyThrows)
{
    const Json doc = Json::parse(R"({"a":1})");
    EXPECT_THROW(doc.at("b"), FatalError);
}

// --- json_check --litmus ----------------------------------------------

/** A small but complete litmus document: tas x LRR x {base,bows} x
 *  under x {1,2} devices, every cell marked completed. */
Json
litmusDoc()
{
    harness::LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {sync::Primitive::TasLock};
    opts.schedulers = {SchedulerKind::LRR};
    opts.bowsModes = {false, true};
    opts.occupancies = {harness::OccupancyLevel::Under};
    const std::vector<harness::LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<harness::LitmusCellResult> results(cells.size());
    for (harness::LitmusCellResult &r : results)
        r.outcome = harness::SyncOutcome::Completed;
    return harness::litmusToJson("litmus", opts, cells, results);
}

/** First-occurrence textual surgery for building broken documents. */
Json
mutated(const Json &doc, const std::string &from, const std::string &to)
{
    std::string text = doc.dump();
    const std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return Json::parse(text);
}

TEST(JsonCheckLitmus, ValidMatrixPasses)
{
    const harness::CheckResult r =
        harness::checkLitmusMatrix(litmusDoc(), 4);
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_NE(r.message.find("4 cells"), std::string::npos);
    EXPECT_NE(r.message.find("completed"), std::string::npos);
}

TEST(JsonCheckLitmus, DeviceAxisProductMismatchFails)
{
    // Shrink the header's devices axis: the cells now span more than
    // the axis lists describe.
    const Json doc =
        mutated(litmusDoc(), "\"devices\":[1,2]", "\"devices\":[1]");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("axis lists span"), std::string::npos);
}

TEST(JsonCheckLitmus, ExpectedCellCountMismatchFails)
{
    const harness::CheckResult r =
        harness::checkLitmusMatrix(litmusDoc(), 90);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("expected 90"), std::string::npos);
}

TEST(JsonCheckLitmus, MissingHeaderFieldFails)
{
    // Strip the header's watchdog budget (the cell configs keep
    // theirs; only the first occurrence is the header's).
    const Json doc = mutated(litmusDoc(), "\"watchdog_cycles\":3000000,",
                             "");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("watchdog_cycles"), std::string::npos);
}

TEST(JsonCheckLitmus, IllegalOutcomeFails)
{
    const Json doc = mutated(litmusDoc(), "\"outcome\":\"completed\"",
                             "\"outcome\":\"exploded\"");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("exploded"), std::string::npos);
}

TEST(JsonCheckLitmus, ExecModeDisagreementFails)
{
    // Flip the header's exec_mode; every cell config now disagrees.
    const Json doc = mutated(litmusDoc(), "\"exec_mode\":\"cycle\"",
                             "\"exec_mode\":\"functional\"");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("exec_mode"), std::string::npos);
}

TEST(JsonCheckLitmus, DuplicateCellFails)
{
    // Rewrite the base cell into a second bows cell (flag and config
    // kept consistent so the duplicate check is what fires).
    Json doc = mutated(litmusDoc(), "\"bows\":false",
                       "\"bows\":true");
    doc = mutated(doc, "\"bows_enabled\":false",
                  "\"bows_enabled\":true");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("duplicate"), std::string::npos);
}

TEST(JsonCheckLitmus, ConfigBowsMismatchFails)
{
    // Flag flipped but config left alone: self-description broken.
    const Json doc = mutated(litmusDoc(), "\"bows\":false",
                             "\"bows\":true");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("bows_enabled"), std::string::npos);
}

// --- per-cell contention evidence (docs/SYNC.md) ------------------------

/** litmusDoc() with the first cell livelocked and carrying evidence. */
Json
evidenceDoc()
{
    harness::LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {sync::Primitive::TasLock};
    opts.schedulers = {SchedulerKind::LRR};
    opts.bowsModes = {false, true};
    opts.occupancies = {harness::OccupancyLevel::Under};
    const std::vector<harness::LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<harness::LitmusCellResult> results(cells.size());
    for (harness::LitmusCellResult &r : results)
        r.outcome = harness::SyncOutcome::Completed;
    results[0].outcome = harness::SyncOutcome::Livelocked;
    results[0].hasEvidence = true;
    results[0].evidenceAddr = 0x1f80;
    results[0].evidenceCasAttempts = 1000;
    results[0].evidenceCasFailures = 970;
    results[0].evidenceFailedShare = 0.97;
    results[0].evidencePeakWaiters = 15;
    results[0].evidenceStorms = 2;
    return harness::litmusToJson("litmus", opts, cells, results);
}

TEST(JsonCheckLitmus, LivelockedCellWithEvidencePasses)
{
    const harness::CheckResult r =
        harness::checkLitmusMatrix(evidenceDoc(), 4);
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_NE(r.message.find("1 with contention evidence"),
              std::string::npos);
}

TEST(JsonCheckLitmus, LivelockedCycleCellWithoutEvidenceFails)
{
    // A livelocked cycle-mode cell is a claim; the evidence block is
    // the proof, so its absence fails the document.
    const Json doc = mutated(litmusDoc(), "\"outcome\":\"completed\"",
                             "\"outcome\":\"livelocked\"");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("evidence"), std::string::npos);
}

TEST(JsonCheckLitmus, EvidenceFailedShareOutOfRangeFails)
{
    const Json doc = mutated(evidenceDoc(), "\"failed_share\":0.97",
                             "\"failed_share\":1.5");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("failed_share"), std::string::npos);
}

TEST(JsonCheckLitmus, EvidenceFailuresExceedingAttemptsFails)
{
    const Json doc = mutated(evidenceDoc(), "\"cas_failures\":970",
                             "\"cas_failures\":1001");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("failures"), std::string::npos);
}

TEST(JsonCheckLitmus, EvidenceMissingFieldFails)
{
    const Json doc = mutated(evidenceDoc(), "\"peak_waiters\":15,", "");
    const harness::CheckResult r = harness::checkLitmusMatrix(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("peak_waiters"), std::string::npos);
}

// --- json_check: sweep cache blocks ------------------------------------

/** A minimal valid sweep artifact with a "cache" block. */
Json
cachedSweepDoc(const char *mode, int hits, int misses, int stored,
               int bypassed, int resumed)
{
    Json cfg = Json::object();
    cfg.set("idle_skip", true);
    cfg.set("sm_threads", 1);
    cfg.set("atomic_service_period", 1);
    cfg.set("metrics_interval", 0);
    cfg.set("exec_mode", "cycle");
    Json stats = Json::object();
    stats.set("cycles", 100);
    Json p = Json::object();
    p.set("id", "p0");
    p.set("ok", true);
    p.set("config", std::move(cfg));
    p.set("stats", std::move(stats));
    Json arr = Json::array();
    arr.push(std::move(p));
    Json cache = Json::object();
    cache.set("mode", mode);
    cache.set("hits", hits);
    cache.set("misses", misses);
    cache.set("stored", stored);
    cache.set("bypassed", bypassed);
    cache.set("resumed", resumed);
    Json d = Json::object();
    d.set("bench", "unit");
    d.set("jobs", 1);
    d.set("cache", std::move(cache));
    d.set("points", std::move(arr));
    return d;
}

TEST(JsonCheckCache, ValidBlockPassesAndIsReported)
{
    const harness::CheckResult hit =
        harness::checkSweepArtifact(cachedSweepDoc("rw", 1, 0, 0, 0, 0),
                                    1, 1);
    EXPECT_TRUE(hit.ok) << hit.message;
    EXPECT_NE(hit.message.find("1 hit"), std::string::npos) << hit.message;

    const harness::CheckResult miss =
        harness::checkSweepArtifact(cachedSweepDoc("rw", 0, 1, 1, 0, 0));
    EXPECT_TRUE(miss.ok) << miss.message;
}

TEST(JsonCheckCache, ExpectedHitsRequireABlock)
{
    // A sweep run without --cache emits no block; asking the checker to
    // assert a hit count against it must fail loudly (the CI warm-run
    // gate depends on this).
    Json doc = cachedSweepDoc("rw", 1, 0, 0, 0, 0);
    doc = mutated(doc, "\"cache\":", "\"cache_disabled\":");
    EXPECT_TRUE(harness::checkSweepArtifact(doc, 1).ok);
    const harness::CheckResult r = harness::checkSweepArtifact(doc, 1, 1);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("--cache"), std::string::npos) << r.message;
}

TEST(JsonCheckCache, HitCountMismatchFails)
{
    const harness::CheckResult r =
        harness::checkSweepArtifact(cachedSweepDoc("rw", 0, 1, 1, 0, 0),
                                    1, 1);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("expected 1"), std::string::npos)
        << r.message;
}

TEST(JsonCheckCache, CounterInvariantsAreEnforced)
{
    // hits + misses + bypassed + resumed must equal the point count.
    const harness::CheckResult sum =
        harness::checkSweepArtifact(cachedSweepDoc("rw", 1, 1, 0, 0, 0));
    EXPECT_FALSE(sum.ok);
    EXPECT_NE(sum.message.find("sum"), std::string::npos) << sum.message;

    // stored is a subset of misses.
    const harness::CheckResult stored =
        harness::checkSweepArtifact(cachedSweepDoc("rw", 0, 1, 2, 0, 0));
    EXPECT_FALSE(stored.ok);
    EXPECT_NE(stored.message.find("stored"), std::string::npos)
        << stored.message;

    // A read-only cache cannot have written records.
    const harness::CheckResult ro =
        harness::checkSweepArtifact(cachedSweepDoc("ro", 0, 1, 1, 0, 0));
    EXPECT_FALSE(ro.ok);
    EXPECT_NE(ro.message.find("read-only"), std::string::npos)
        << ro.message;

    // "off" never emits a block, so a block claiming it is malformed.
    const harness::CheckResult off =
        harness::checkSweepArtifact(cachedSweepDoc("off", 0, 1, 0, 0, 0));
    EXPECT_FALSE(off.ok);
    EXPECT_NE(off.message.find("mode"), std::string::npos) << off.message;

    // Negative and missing counters are malformed.
    const harness::CheckResult neg =
        harness::checkSweepArtifact(cachedSweepDoc("rw", -1, 2, 0, 0, 0));
    EXPECT_FALSE(neg.ok);
    const Json dropped = mutated(cachedSweepDoc("rw", 1, 0, 0, 0, 0),
                                 "\"resumed\":0", "\"resumed\":null");
    const harness::CheckResult miss =
        harness::checkSweepArtifact(dropped);
    EXPECT_FALSE(miss.ok);
    EXPECT_NE(miss.message.find("resumed"), std::string::npos)
        << miss.message;
}

TEST(JsonCheckCache, ComparePointsAcceptsOnlyByteIdenticalArrays)
{
    // Cold (all misses) vs warm (all hits): cache blocks differ, the
    // points arrays must not.
    const Json cold = cachedSweepDoc("rw", 0, 1, 1, 0, 0);
    const Json warm = cachedSweepDoc("rw", 1, 0, 0, 0, 0);
    const harness::CheckResult same =
        harness::compareSweepPoints(cold, warm);
    EXPECT_TRUE(same.ok) << same.message;
    EXPECT_NE(same.message.find("byte-identical"), std::string::npos);

    // A single diverging stat is caught and named.
    const Json drifted =
        mutated(warm, "\"cycles\":100", "\"cycles\":101");
    const harness::CheckResult diff =
        harness::compareSweepPoints(cold, drifted);
    EXPECT_FALSE(diff.ok);
    EXPECT_NE(diff.message.find("p0"), std::string::npos) << diff.message;

    // Different benches must not be compared at all.
    const Json other = mutated(warm, "\"bench\":\"unit\"",
                               "\"bench\":\"other\"");
    const harness::CheckResult bench =
        harness::compareSweepPoints(cold, other);
    EXPECT_FALSE(bench.ok);
    EXPECT_NE(bench.message.find("bench"), std::string::npos)
        << bench.message;
}

}  // namespace
}  // namespace bowsim
