#include <gtest/gtest.h>

#include "src/mem/coalescer.hpp"

namespace bowsim {
namespace {

std::array<Addr, kWarpSize>
laneAddrs(std::function<Addr(unsigned)> f)
{
    std::array<Addr, kWarpSize> a{};
    for (unsigned i = 0; i < kWarpSize; ++i)
        a[i] = f(i);
    return a;
}

TEST(Coalescer, UnitStride64BitAccessesNeedTwoLines)
{
    // 32 lanes x 8 bytes = 256 B = two 128 B lines.
    auto addrs = laneAddrs([](unsigned l) { return 0x1000 + 8 * l; });
    auto lines = coalesce(addrs, kFullMask);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1080u);
}

TEST(Coalescer, SameAddressCollapsesToOneLine)
{
    auto addrs = laneAddrs([](unsigned) { return Addr{0x2008}; });
    auto lines = coalesce(addrs, kFullMask);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x2000u);
}

TEST(Coalescer, StridedAccessesScatterToManyLines)
{
    auto addrs =
        laneAddrs([](unsigned l) { return Addr{l} * 1024; });
    auto lines = coalesce(addrs, kFullMask);
    EXPECT_EQ(lines.size(), kWarpSize);
}

TEST(Coalescer, MaskSelectsParticipatingLanes)
{
    auto addrs =
        laneAddrs([](unsigned l) { return Addr{l} * 1024; });
    auto lines = coalesce(addrs, 0x5);  // lanes 0 and 2
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 2048u);
}

TEST(Coalescer, EmptyMaskProducesNoTransactions)
{
    auto addrs = laneAddrs([](unsigned l) { return Addr{l}; });
    EXPECT_TRUE(coalesce(addrs, 0).empty());
}

TEST(Coalescer, MisalignedRunStraddlesALineBoundary)
{
    // 8-byte accesses starting 8 bytes before a boundary.
    auto addrs =
        laneAddrs([](unsigned l) { return 0x1078 + 8 * Addr{l}; });
    auto lines = coalesce(addrs, 0x3);  // lanes 0,1 straddle
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1080u);
}

TEST(Coalescer, OrderIsFirstTouch)
{
    std::array<Addr, kWarpSize> addrs{};
    addrs[0] = 0x3080;
    addrs[1] = 0x3000;
    addrs[2] = 0x3080;
    auto lines = coalesce(addrs, 0x7);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x3080u);
    EXPECT_EQ(lines[1], 0x3000u);
}

}  // namespace
}  // namespace bowsim
