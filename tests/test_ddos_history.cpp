#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/core/ddos/hashing.hpp"
#include "src/core/ddos/history.hpp"

namespace bowsim {
namespace {

DdosConfig
cfgWithLength(unsigned l)
{
    DdosConfig cfg;
    cfg.historyLength = l;
    return cfg;
}

// ------------------------------------------------------------- hashing --

TEST(Hashing, ModuloKeepsLowBits)
{
    EXPECT_EQ(hashHistory(HashKind::Modulo, 8, 0x12345), 0x45u);
    EXPECT_EQ(hashHistory(HashKind::Modulo, 4, 0x12345), 0x5u);
}

TEST(Hashing, XorFoldsAllBits)
{
    // 0x12345 in 8-bit chunks: 0x45 ^ 0x23 ^ 0x01 = 0x67.
    EXPECT_EQ(hashHistory(HashKind::Xor, 8, 0x12345), 0x67u);
}

TEST(Hashing, XorSeesHighBitChanges)
{
    // Values differing only above bit 8: MODULO collides, XOR does not.
    std::uint64_t a = 0x100;
    std::uint64_t b = 0x200;
    EXPECT_EQ(hashHistory(HashKind::Modulo, 8, a),
              hashHistory(HashKind::Modulo, 8, b));
    EXPECT_NE(hashHistory(HashKind::Xor, 8, a),
              hashHistory(HashKind::Xor, 8, b));
}

TEST(Hashing, ZeroHashesToZero)
{
    EXPECT_EQ(hashHistory(HashKind::Xor, 8, 0), 0u);
    EXPECT_EQ(hashHistory(HashKind::Modulo, 8, 0), 0u);
}

TEST(Hashing, RejectsBadWidth)
{
    EXPECT_THROW(hashHistory(HashKind::Xor, 0, 1), FatalError);
    EXPECT_THROW(hashHistory(HashKind::Xor, 33, 1), FatalError);
}

// -------------------------------------------------- history FSM (paper) --

TEST(History, PaperWorkedExampleSpinLoop)
{
    // Fig. 7b: two setps per spin iteration with constant values.
    HistoryRegisters h(cfgWithLength(8));
    // 1a/1b: first setp (PC hash 0x7, values {1, 0}).
    h.insert(0x7, 0x1, 0x0);
    EXPECT_EQ(h.matchPointer(), 0u);
    EXPECT_FALSE(h.spinning());
    // 2a/2b: second setp (PC hash 0x2, values {0, 0}); mismatch.
    h.insert(0x2, 0x0, 0x0);
    EXPECT_EQ(h.matchPointer(), 1u);
    // 3: first setp again -> match at distance 1 (period 2).
    h.insert(0x7, 0x1, 0x0);
    EXPECT_EQ(h.matchPointer(), 2u);
    EXPECT_EQ(h.remainingMatches(), 1u);
    EXPECT_FALSE(h.spinning());
    // 4: second setp again -> confirmed spinning.
    h.insert(0x2, 0x0, 0x0);
    EXPECT_TRUE(h.spinning());
    // 5: lock acquired -> value changes -> spinning state lost.
    h.insert(0x7, 0x0, 0x0);
    EXPECT_FALSE(h.spinning());
    EXPECT_EQ(h.matchPointer(), 0u);
}

TEST(History, PaperWorkedExampleNormalLoop)
{
    // Fig. 7d: one setp per iteration whose first operand (the induction
    // variable) changes -> never spinning.
    HistoryRegisters h(cfgWithLength(8));
    for (std::uint32_t i = 0; i < 20; ++i) {
        h.insert(0x2, i & 0xff, 0xe);
        EXPECT_FALSE(h.spinning()) << "iteration " << i;
    }
}

TEST(History, PeriodOneLoopDetected)
{
    // Tight `while(CAS) ;` style loop: a single setp repeating.
    HistoryRegisters h(cfgWithLength(8));
    h.insert(0x3, 0x1, 0x0);
    EXPECT_FALSE(h.spinning());
    h.insert(0x3, 0x1, 0x0);
    // Period 1: remaining = 0 at the first match.
    EXPECT_TRUE(h.spinning());
}

TEST(History, LongerPeriodNeedsFullConfirmation)
{
    // Period-3 loop: detection at distance 2, then 2 more matches.
    HistoryRegisters h(cfgWithLength(8));
    auto iteration = [&h]() {
        h.insert(0xa, 0x1, 0x0);
        h.insert(0xb, 0x2, 0x0);
        h.insert(0xc, 0x3, 0x0);
    };
    iteration();
    EXPECT_FALSE(h.spinning());
    // Second iteration: the match at distance 2 plus (period-1) further
    // matches completes confirmation exactly at the iteration boundary.
    h.insert(0xa, 0x1, 0x0);
    EXPECT_FALSE(h.spinning());
    h.insert(0xb, 0x2, 0x0);
    EXPECT_FALSE(h.spinning());
    h.insert(0xc, 0x3, 0x0);
    EXPECT_TRUE(h.spinning());
}

TEST(History, ValueChangeBreaksPathOnlyRepetition)
{
    // The path repeats but one source value advances (normal loop).
    HistoryRegisters h(cfgWithLength(8));
    for (std::uint32_t i = 0; i < 16; ++i) {
        h.insert(0x5, i, 0x7);
        EXPECT_FALSE(h.spinning());
    }
}

TEST(History, SpinningSurvivesContinuedRepetition)
{
    HistoryRegisters h(cfgWithLength(8));
    for (int i = 0; i < 50; ++i)
        h.insert(0x3, 0x1, 0x0);
    EXPECT_TRUE(h.spinning());
}

TEST(History, ResetClearsState)
{
    HistoryRegisters h(cfgWithLength(8));
    h.insert(0x3, 0x1, 0x0);
    h.insert(0x3, 0x1, 0x0);
    EXPECT_TRUE(h.spinning());
    h.reset();
    EXPECT_FALSE(h.spinning());
    EXPECT_EQ(h.matchPointer(), 0u);
    h.insert(0x3, 0x1, 0x0);
    EXPECT_FALSE(h.spinning());  // must re-confirm from scratch
}

TEST(History, PeriodLongerThanHistoryNotDetected)
{
    // A "loop" of period 10 with history length 8: the match pointer
    // wraps before ever reaching the repetition distance.
    HistoryRegisters h(cfgWithLength(8));
    for (int rep = 0; rep < 10; ++rep) {
        for (std::uint32_t k = 0; k < 10; ++k)
            h.insert(0x10 + k, 0x1, 0x0);
    }
    EXPECT_FALSE(h.spinning());
}

/** Property over period: loops up to the history length are detected. */
class HistoryPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistoryPeriod, DetectsLoopOfThisPeriod)
{
    const unsigned period = GetParam();
    HistoryRegisters h(cfgWithLength(8));
    bool detected = false;
    for (int rep = 0; rep < 12 && !detected; ++rep) {
        for (unsigned k = 0; k < period; ++k)
            h.insert(0x20 + k, 0x1, 0x0);
        detected = h.spinning();
    }
    EXPECT_TRUE(detected) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(UpToHistoryLength, HistoryPeriod,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

}  // namespace
}  // namespace bowsim
