#include <gtest/gtest.h>

#include "src/energy/energy_model.hpp"

namespace bowsim {
namespace {

TEST(Energy, ZeroEventsZeroEnergy)
{
    EnergyModel m;
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(EnergyEvents{}), 0.0);
}

TEST(Energy, SingleEventCostsMatchTable)
{
    EnergyModel m;
    const EnergyCosts &c = m.costs();
    EnergyEvents ev;
    ev.warpInstructions = 1;
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(ev), c.issuePj / 1000.0);
    ev = EnergyEvents{};
    ev.dramAccesses = 2;
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(ev), 2 * c.dramPj / 1000.0);
}

TEST(Energy, StaticEnergyScalesWithSmCycles)
{
    EnergyModel m;
    const EnergyCosts &c = m.costs();
    EXPECT_DOUBLE_EQ(m.staticEnergyNj(0), 0.0);
    EXPECT_DOUBLE_EQ(m.staticEnergyNj(1), c.staticPerSmCyclePj / 1000.0);
    EXPECT_DOUBLE_EQ(m.staticEnergyNj(2000),
                     2000 * c.staticPerSmCyclePj / 1000.0);
    // Leakage is charged per SM-cycle, not per event: it must be kept
    // out of the dynamic tally.
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(EnergyEvents{}), 0.0);
}

TEST(Energy, EnergyIsLinearInEvents)
{
    EnergyModel m;
    EnergyEvents ev;
    ev.warpInstructions = 10;
    ev.laneAluOps = 320;
    ev.l1Accesses = 5;
    double one = m.dynamicEnergyNj(ev);
    EnergyEvents doubled = ev;
    doubled += ev;
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(doubled), 2 * one);
}

TEST(Energy, AccumulationSumsFieldwise)
{
    EnergyEvents a;
    a.l1Accesses = 3;
    a.atomicOps = 1;
    EnergyEvents b;
    b.l1Accesses = 4;
    b.icntPackets = 7;
    a += b;
    EXPECT_EQ(a.l1Accesses, 7u);
    EXPECT_EQ(a.atomicOps, 1u);
    EXPECT_EQ(a.icntPackets, 7u);
}

TEST(Energy, MemoryEventsDominateComputeEvents)
{
    // Sanity on the cost table: a DRAM access costs more than an L2
    // access, which costs more than an L1 access, which costs more than
    // a lane ALU op — the ordering every energy model must respect.
    EnergyCosts c;
    EXPECT_GT(c.dramPj, c.l2Pj);
    EXPECT_GT(c.l2Pj, c.l1Pj);
    EXPECT_GT(c.l1Pj, c.aluLanePj);
    EXPECT_GT(c.atomicPj, c.l2Pj);
}

TEST(Energy, CustomCostsAreRespected)
{
    EnergyCosts costs;
    costs.issuePj = 1000.0;
    EnergyModel m(costs);
    EnergyEvents ev;
    ev.warpInstructions = 3;
    EXPECT_DOUBLE_EQ(m.dynamicEnergyNj(ev), 3.0);
}

}  // namespace
}  // namespace bowsim
