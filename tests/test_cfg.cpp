#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/isa/cfg.hpp"

namespace bowsim {
namespace {

TEST(Cfg, StraightLineIsOneBlock)
{
    Program p = assemble(R"(
.kernel straight
  mov %r1, 1;
  add %r1, %r1, 2;
  exit;
)");
    Cfg cfg = buildCfg(p);
    EXPECT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 2u);
    EXPECT_EQ(cfg.blocks[0].succs,
              std::vector<int>{cfg.exitNode});
}

TEST(Cfg, IfElseReconvergesAtJoin)
{
    // pc: 0 setp, 1 bra ELSE, 2 mov, 3 bra.uni JOIN, 4 ELSE:mov, 5 JOIN:..
    Program p = assemble(R"(
.kernel ifelse
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra ELSE;
  mov %r2, 1;
  bra.uni JOIN;
ELSE:
  mov %r2, 2;
JOIN:
  add %r2, %r2, 1;
  exit;
)");
    EXPECT_EQ(p.code[1].reconvergence, 5u);
}

TEST(Cfg, IfWithoutElseReconvergesAfterThen)
{
    Program p = assemble(R"(
.kernel ifonly
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra SKIP;
  mov %r2, 1;
SKIP:
  add %r2, %r2, 1;
  exit;
)");
    EXPECT_EQ(p.code[1].reconvergence, 3u);
}

TEST(Cfg, LoopBackEdgeReconvergesAfterLoop)
{
    Program p = assemble(R"(
.kernel loop
LOOP:
  add %r1, %r1, 1;
  setp.lt.s64 %p1, %r1, 10;
  @%p1 bra LOOP;
  mov %r2, 0;
  exit;
)");
    EXPECT_EQ(p.code[2].reconvergence, 3u);
}

TEST(Cfg, NestedIfReconvergences)
{
    Program p = assemble(R"(
.kernel nested
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra OUTER_SKIP;
  setp.eq.s64 %p2, %r2, 0;
  @%p2 bra INNER_SKIP;
  mov %r3, 1;
INNER_SKIP:
  mov %r4, 2;
OUTER_SKIP:
  mov %r5, 3;
  exit;
)");
    EXPECT_EQ(p.code[1].reconvergence, 6u);  // OUTER_SKIP
    EXPECT_EQ(p.code[3].reconvergence, 5u);  // INNER_SKIP
}

TEST(Cfg, GuardedExitReconvergenceIsExitNode)
{
    Program p = assemble(R"(
.kernel gexit
  setp.eq.s64 %p1, %r1, 0;
  @%p1 exit;
  mov %r2, 1;
  exit;
)");
    // Paths only merge at the (virtual) exit.
    EXPECT_EQ(p.code[1].reconvergence, kInvalidPc);
}

TEST(Cfg, DivergentBranchToExitOnlyPathsHasInvalidRpc)
{
    Program p = assemble(R"(
.kernel noreconv
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra A;
  mov %r2, 1;
  exit;
A:
  mov %r2, 2;
  exit;
)");
    EXPECT_EQ(p.code[1].reconvergence, kInvalidPc);
}

TEST(Cfg, UniformBranchGetsNoReconvergence)
{
    Program p = assemble(R"(
.kernel uni
  bra.uni SKIP;
SKIP:
  exit;
)");
    EXPECT_EQ(p.code[0].reconvergence, kInvalidPc);
}

TEST(Cfg, BlockOfMapsEveryPc)
{
    Program p = assemble(R"(
.kernel blocks
  mov %r1, 0;
LOOP:
  add %r1, %r1, 1;
  setp.lt.s64 %p1, %r1, 4;
  @%p1 bra LOOP;
  exit;
)");
    Cfg cfg = buildCfg(p);
    for (Pc pc = 0; pc < p.length(); ++pc) {
        int b = cfg.blockOf[pc];
        ASSERT_GE(b, 0);
        EXPECT_GE(pc, cfg.blocks[b].first);
        EXPECT_LE(pc, cfg.blocks[b].last);
    }
}

TEST(Cfg, PredsMatchSuccs)
{
    Program p = assemble(R"(
.kernel edges
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra B;
  mov %r2, 1;
B:
  exit;
)");
    Cfg cfg = buildCfg(p);
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (int s : cfg.blocks[b].succs) {
            if (s == cfg.exitNode)
                continue;
            const auto &preds = cfg.blocks[s].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(),
                                static_cast<int>(b)),
                      preds.end());
        }
    }
}

TEST(Cfg, WhileLoopWithInteriorIf)
{
    // The HT spin-loop shape: loop { if (acquired) {crit} ; backedge }.
    Program p = assemble(R"(
.kernel spinshape
LOOP:
  atom.global.cas.b64 %r1, [%r2], 0, 1;
  setp.ne.s64 %p1, %r1, 0;
  @%p1 bra SKIP;
  mov %r3, 1;
SKIP:
  setp.eq.s64 %p2, %r3, 0;
  @%p2 bra LOOP;
  exit;
)");
    EXPECT_EQ(p.code[2].reconvergence, 4u);  // SKIP
    EXPECT_EQ(p.code[5].reconvergence, 6u);  // loop exit
}

}  // namespace
}  // namespace bowsim
