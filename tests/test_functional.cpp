#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/kernels/registry.hpp"
#include "src/sim/functional.hpp"
#include "src/sim/gpu.hpp"

/**
 * Fast-functional execution mode (docs/PERF.md, "Execution modes"):
 * determinism of the fixed atomic application order, the bounded-
 * fairness slice rotation, and the checkpoint/restore round trip that
 * sampled mode's detailed windows depend on.
 */

namespace bowsim {
namespace {

GpuConfig
funcConfig(ExecMode mode = ExecMode::Functional)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.execMode = mode;
    return cfg;
}

/** Same spin-lock kernel as test_sim_sync.cpp: every thread increments
 *  a counter inside a global critical section. */
constexpr const char *kSpinCounter = R"(
.kernel spin_counter
.param 2
  ld.param.u64 %r1, [0];         // mutex
  ld.param.u64 %r2, [8];         // counter
  mov %r20, 0;
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra SKIP;
.annot sync_end
  ld.global.u64 %r4, [%r2];
  add %r4, %r4, 1;
  st.global.u64 [%r2], %r4;
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r5, [%r1], 0;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
.annot sync_end
  exit;
)";

TEST(Functional, SpinLockCriticalSectionIsExact)
{
    // The bounded-fairness rotation must let the lock holder finish its
    // critical section while other warps spin: the kernel terminates
    // and every one of the 512 increments lands.
    Gpu gpu(funcConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{128, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 4u * 128u);
    EXPECT_EQ(s.outcomes.lockSuccess, 4u * 128u);
    EXPECT_EQ(s.cycles, 0u) << "functional mode reports no timing";
    EXPECT_GT(s.warpInstructions, 0u);
    EXPECT_FALSE(s.hasSampledIpc());
}

TEST(Functional, AtomicOrderingIsDeterministic)
{
    // Atomics apply in the fixed SM-id/CTA-slot/warp-slot rotation
    // order, so two functional runs of a contended kernel are
    // bit-identical — memory image and outcome counters alike.
    auto once = [] {
        Gpu gpu(funcConfig());
        KernelStats s = makeBenchmark("ATM", 0.25)->run(gpu);
        return std::make_pair(gpu.mem().digest(), s);
    };
    auto [dig_a, s_a] = once();
    auto [dig_b, s_b] = once();
    EXPECT_EQ(dig_a, dig_b);
    EXPECT_EQ(s_a.warpInstructions, s_b.warpInstructions);
    EXPECT_EQ(s_a.outcomes.lockSuccess, s_b.outcomes.lockSuccess);
    EXPECT_EQ(s_a.outcomes.total(), s_b.outcomes.total());
}

TEST(Functional, MatchesCycleModeDigest)
{
    // ATM is schedule-invariant (test_differential.cpp), so functional
    // mode must converge to the cycle-mode memory image exactly. This
    // is the fast anchor; FunctionalEquivalence covers the full suite.
    GpuConfig cyc = funcConfig(ExecMode::Cycle);
    Gpu gpu_c(cyc);
    KernelStats sc = makeBenchmark("ATM", 0.25)->run(gpu_c);

    Gpu gpu_f(funcConfig());
    KernelStats sf = makeBenchmark("ATM", 0.25)->run(gpu_f);

    EXPECT_EQ(gpu_f.mem().digest(), gpu_c.mem().digest());
    // Lock-attempt counts legitimately differ (ATM's two-lock protocol
    // releases and retries lock 1 when lock 2 is taken, so even
    // successful acquisitions depend on interleaving); both runs must
    // still see real contention.
    EXPECT_GT(sf.outcomes.lockSuccess, 0u);
    EXPECT_GT(sc.outcomes.lockSuccess, 0u);
}

TEST(Functional, RunForStopsWithinOneSlice)
{
    Gpu gpu(funcConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);

    LaunchState launch;
    launch.prog = &prog;
    launch.grid = Dim3{4, 1, 1};
    launch.block = Dim3{128, 1, 1};
    launch.params = {static_cast<Word>(mutex), static_cast<Word>(counter)};
    launch.mem = &gpu.mem();
    launch.stats.kernel = prog.name;

    FunctionalExecutor fx(gpu.config(), launch);
    fx.runFor(1000);
    // The fast-forward odometer overshoots by at most the final warp's
    // slice — the fairness bound sampled mode's period relies on.
    EXPECT_GE(fx.instructionsExecuted(), 1000u);
    EXPECT_LE(fx.instructionsExecuted(),
              1000u + FunctionalExecutor::kSliceInstructions);
}

TEST(Functional, CheckpointRestoreRoundTrip)
{
    Program prog = assemble(kSpinCounter);
    const Dim3 grid{4, 1, 1};
    const Dim3 block{128, 1, 1};

    Gpu gpu(funcConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    const std::vector<Word> params = {static_cast<Word>(mutex),
                                      static_cast<Word>(counter)};

    LaunchState launch;
    launch.prog = &prog;
    launch.grid = grid;
    launch.block = block;
    launch.params = params;
    launch.mem = &gpu.mem();
    launch.stats.kernel = prog.name;

    FunctionalExecutor fx(gpu.config(), launch);
    ASSERT_FALSE(fx.runFor(500)) << "kernel finished before checkpoint";
    GpuSnapshot snap = fx.snapshot();
    MemorySpace mem_at_snap = gpu.mem();

    fx.run();
    const std::uint64_t straight = gpu.mem().digest();

    // Resume an independent executor from the checkpoint; it must
    // converge to the same memory image.
    LaunchState relaunch;
    relaunch.prog = &prog;
    relaunch.grid = grid;
    relaunch.block = block;
    relaunch.params = params;
    relaunch.mem = &mem_at_snap;
    relaunch.stats.kernel = prog.name;
    FunctionalExecutor fy(gpu.config(), relaunch);
    fy.restore(snap);
    EXPECT_FALSE(fy.finished());
    fy.run();
    EXPECT_EQ(mem_at_snap.digest(), straight);

    EXPECT_EQ(mem_at_snap.read(counter, 8), 4u * 128u);
}

TEST(Sampled, SpinLockResultExactWithIpcEstimate)
{
    GpuConfig cfg = funcConfig(ExecMode::Sampled);
    cfg.sampleWindow = 500;
    cfg.samplePeriod = 2000;
    Gpu gpu(cfg);
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{128, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 4u * 128u) << "sampled mode must not perturb results";
    EXPECT_TRUE(s.hasSampledIpc());
    EXPECT_GT(s.sampledWindows, 0u);
    EXPECT_GT(s.ipcEst, 0.0);
    EXPECT_GT(s.cycles, 0u) << "cycles carries the projected run length";
}

TEST(Sampled, ShortKernelFallsBackToExactWindow)
{
    // A kernel that finishes inside the first fast-forward leg gets one
    // full detailed window instead: the estimate is then exact.
    GpuConfig cfg = funcConfig(ExecMode::Sampled);
    Gpu gpu(cfg);
    Addr out = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel tiny
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                               {static_cast<Word>(out)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, out, 8);
    EXPECT_EQ(v, 32u);
    EXPECT_EQ(s.sampledWindows, 1u);
    EXPECT_GT(s.ipcEst, 0.0);
    EXPECT_EQ(s.ipcCi95, 0.0) << "one window has no spread";

    GpuConfig cyc = funcConfig(ExecMode::Cycle);
    Gpu gpu_c(cyc);
    Addr out_c = gpu_c.malloc(8);
    KernelStats sc = gpu_c.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                                  {static_cast<Word>(out_c)});
    EXPECT_NEAR(s.ipcEst, sc.ipc(), 1e-9)
        << "single-window fallback must reproduce cycle-mode IPC";
}

}  // namespace
}  // namespace bowsim
