#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/json.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/litmus.hpp"
#include "src/sim/gpu.hpp"
#include "src/syncprof/syncprof.hpp"

/**
 * @file
 * Whole-simulation guarantees of the sync-contention profiler
 * (docs/SYNC.md): the --sync-report document is byte-identical across
 * the execution knobs that may not change results (--sm-threads,
 * idle-skip), the device split folds to the aggregate, and the matrix's
 * headline result carries quantitative evidence — the BOWS-cured
 * CAS-storm cells show a >= 0.9 failed share in the base cell and at
 * most half the convoy depth (failures per acquire) in the BOWS twin.
 */

namespace bowsim {
namespace {

using harness::Json;
using harness::LitmusCell;
using harness::LitmusCellResult;
using harness::LitmusOptions;
using harness::OccupancyLevel;
using harness::SyncOutcome;
using syncprof::SyncProfileRegistry;

LitmusOptions
cellOptions(sync::Primitive p, SchedulerKind sched, bool bows,
            OccupancyLevel level, unsigned devices)
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {p};
    opts.schedulers = {sched};
    opts.bowsModes = {bows};
    opts.occupancies = {level};
    opts.devices = {devices};
    return opts;
}

/** Runs the single cell of @p opts with a profiler attached and returns
 *  (result, report-JSON text). */
std::pair<LitmusCellResult, std::string>
runProfiled(const LitmusOptions &opts, unsigned sm_threads,
            bool idle_skip)
{
    std::vector<LitmusCell> cells = harness::buildLitmusCells(opts);
    EXPECT_EQ(cells.size(), 1u);
    cells[0].cfg.smThreads = sm_threads;
    cells[0].cfg.idleSkip = idle_skip;
    SyncProfileRegistry reg(cells[0].cfg.syncTopN,
                            cells[0].cfg.syncStormWindow);
    Gpu gpu(cells[0].cfg);
    gpu.setSyncProf(&reg);
    LitmusCellResult r = harness::runLitmusCell(cells[0], gpu);
    return {r, reg.reportJson().dump()};
}

/** The contended livelock cell: every byte of the report must be a pure
 *  function of the simulated schedule, not of how we executed it. */
TEST(SyncProfEquivalence, ReportBytesInvariantAcrossExecutionKnobs)
{
    const LitmusOptions opts =
        cellOptions(sync::Primitive::TasLock, SchedulerKind::GTO, false,
                    OccupancyLevel::Over, 1);
    const auto [base_result, base_report] = runProfiled(opts, 1, true);
    EXPECT_EQ(base_result.outcome, SyncOutcome::Livelocked);
    const harness::CheckResult chk =
        harness::checkSyncReport(Json::parse(base_report));
    EXPECT_TRUE(chk.ok) << chk.message;
    for (unsigned sm_threads : {1u, 4u}) {
        for (bool idle_skip : {false, true}) {
            const auto [r, report] =
                runProfiled(opts, sm_threads, idle_skip);
            EXPECT_EQ(r.outcome, base_result.outcome);
            EXPECT_EQ(report, base_report)
                << "sm_threads=" << sm_threads
                << " idle_skip=" << idle_skip;
        }
    }
}

/** On one device every timed atomic is local; on two, the halves split
 *  local/remote but always fold back to the total. Device-scope atomics
 *  (the locks) resolve at the local L2 by design, so the primitive that
 *  exercises the link is the system-scope barrier, whose atomics route
 *  to the barrier word's home device. */
TEST(SyncProfEquivalence, DeviceSplitFoldsToAggregate)
{
    for (unsigned devices : {1u, 2u}) {
        const LitmusOptions opts =
            cellOptions(sync::Primitive::SystemBarrier,
                        SchedulerKind::LRR, true, OccupancyLevel::Exact,
                        devices);
        const auto [r, report] = runProfiled(opts, 1, true);
        EXPECT_EQ(r.outcome, SyncOutcome::Completed);
        const Json doc = Json::parse(report);
        const Json &totals = doc.at("totals");
        const std::int64_t timed = totals.at("timed_atomics").asInt();
        const std::int64_t local = totals.at("local_atomics").asInt();
        const std::int64_t remote = totals.at("remote_atomics").asInt();
        EXPECT_GT(timed, 0) << "devices=" << devices;
        EXPECT_EQ(local + remote, timed) << "devices=" << devices;
        if (devices == 1)
            EXPECT_EQ(remote, 0);
        else
            EXPECT_GT(remote, 0);
    }
}

/**
 * The headline result, quantified: on every scheduler, the
 * over-subscribed test-and-set cell livelocks under the base scheduler
 * with a CAS storm on the lock word (failed share >= 0.9, storm
 * detector fired), and the BOWS twin completes with at most half the
 * convoy depth. The *share* cannot halve — a healthy test-and-set lock
 * under N waiters still fails ~(N-1)/N of its attempts — so the cure
 * shows up in failures-per-acquire, the number of wasted attempts each
 * hand-off costs.
 */
TEST(SyncProfEquivalence, BowsCuresTheBaseSchedulerCasStorm)
{
    for (SchedulerKind sched :
         {SchedulerKind::LRR, SchedulerKind::GTO, SchedulerKind::CAWA,
          SchedulerKind::TwoLevel}) {
        const auto [base, base_report] = runProfiled(
            cellOptions(sync::Primitive::TasLock, sched, false,
                        OccupancyLevel::Over, 1),
            1, true);
        const auto [bows, bows_report] = runProfiled(
            cellOptions(sync::Primitive::TasLock, sched, true,
                        OccupancyLevel::Over, 1),
            1, true);
        ASSERT_EQ(base.outcome, SyncOutcome::Livelocked)
            << toString(sched);
        ASSERT_EQ(bows.outcome, SyncOutcome::Completed)
            << toString(sched);
        // Both cells carry evidence attributed to the same lock word.
        ASSERT_TRUE(base.hasEvidence);
        ASSERT_TRUE(bows.hasEvidence);
        EXPECT_EQ(base.evidenceAddr, bows.evidenceAddr);
        EXPECT_GE(base.evidenceFailedShare, 0.9) << toString(sched);
        EXPECT_GT(base.evidenceStorms, 0u) << toString(sched);
        const double base_depth =
            static_cast<double>(base.evidenceCasFailures) /
            static_cast<double>(std::max<std::uint64_t>(
                1, base.evidenceCasAttempts - base.evidenceCasFailures));
        const double bows_depth =
            static_cast<double>(bows.evidenceCasFailures) /
            static_cast<double>(std::max<std::uint64_t>(
                1, bows.evidenceCasAttempts - bows.evidenceCasFailures));
        EXPECT_LE(bows_depth, base_depth / 2.0)
            << toString(sched) << ": base " << base_depth << " bows "
            << bows_depth;
    }
}

}  // namespace
}  // namespace bowsim
