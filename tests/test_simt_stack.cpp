#include <gtest/gtest.h>

#include "src/arch/simt_stack.hpp"
#include "src/common/log.hpp"

namespace bowsim {
namespace {

Instruction
braTo(Pc target, Pc rpc)
{
    Instruction i;
    i.op = Opcode::Bra;
    i.guard = 0;  // conditional
    i.target = target;
    i.reconvergence = rpc;
    return i;
}

TEST(SimtStack, ResetStartsAtZeroWithGivenMask)
{
    SimtStack s;
    s.reset(0xffff);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), 0xffffu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, AdvanceIncrementsPc)
{
    SimtStack s;
    s.reset(kFullMask);
    s.advance();
    s.advance();
    EXPECT_EQ(s.pc(), 2u);
}

TEST(SimtStack, UniformTakenBranchJumps)
{
    SimtStack s;
    s.reset(kFullMask);
    s.branch(braTo(10, 20), kFullMask);
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformNotTakenBranchFallsThrough)
{
    SimtStack s;
    s.reset(kFullMask);
    s.branch(braTo(10, 20), 0);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergenceRunsTakenSideFirstThenReconverges)
{
    SimtStack s;
    s.reset(0xf);
    // pc 0: branch to 10, reconverge at 20; lanes 0-1 taken.
    s.branch(braTo(10, 20), 0x3);
    EXPECT_EQ(s.depth(), 3u);
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), 0x3u);

    // Taken side runs 10..19 then reaches the reconvergence point.
    for (Pc pc = 10; pc < 20; ++pc)
        s.advance();
    // Now the fall-through side is on top, at pc 1.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xcu);
    for (Pc pc = 1; pc < 20; ++pc)
        s.advance();
    // Both sides merged: full mask at the reconvergence PC.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xfu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(0xff);
    s.branch(braTo(10, 30), 0x0f);  // outer split at pc 0
    EXPECT_EQ(s.pc(), 10u);
    s.branch(braTo(20, 25), 0x03);  // inner split on the taken side
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0x03u);
    EXPECT_EQ(s.depth(), 5u);
    // Inner taken side runs to 25.
    for (Pc pc = 20; pc < 25; ++pc)
        s.advance();
    // Inner fall side (lanes 2-3) resumes at 11.
    EXPECT_EQ(s.pc(), 11u);
    EXPECT_EQ(s.activeMask(), 0x0cu);
    for (Pc pc = 11; pc < 25; ++pc)
        s.advance();
    // Inner reconvergence: lanes 0-3 at 25.
    EXPECT_EQ(s.pc(), 25u);
    EXPECT_EQ(s.activeMask(), 0x0fu);
}

TEST(SimtStack, ExitAllLanesFinishesWarp)
{
    SimtStack s;
    s.reset(0xf);
    s.exitLanes(0xf);
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, PartialExitAdvancesRemainingLanes)
{
    SimtStack s;
    s.reset(0xf);
    s.exitLanes(0x3);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.activeMask(), 0xcu);
    EXPECT_EQ(s.pc(), 1u);
}

TEST(SimtStack, ExitInsideDivergedPathCleansWholeStack)
{
    SimtStack s;
    s.reset(0xf);
    s.branch(braTo(10, 20), 0x3);
    // The taken lanes exit inside their path.
    s.exitLanes(0x3);
    // Fall-through side resumes.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xcu);
    for (Pc pc = 1; pc < 20; ++pc)
        s.advance();
    // Reconvergence entry holds only the surviving lanes.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xcu);
    s.exitLanes(0xc);
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, MergeAtExitDivergence)
{
    // Reconvergence PC kInvalidPc: both sides run to exit independently.
    SimtStack s;
    s.reset(0xf);
    s.branch(braTo(10, kInvalidPc), 0x5);
    EXPECT_EQ(s.pc(), 10u);
    s.exitLanes(0x5);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xau);
    s.exitLanes(0xa);
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, BackwardBranchLoopIteratesAndExits)
{
    SimtStack s;
    s.reset(kFullMask);
    // Loop body at 0..2; backward branch at 2 -> 0, reconverge at 3.
    for (int iter = 0; iter < 3; ++iter) {
        s.advance();
        s.advance();
        s.branch(braTo(0, 3), kFullMask);
        EXPECT_EQ(s.pc(), 0u);
    }
    s.advance();
    s.advance();
    s.branch(braTo(0, 3), 0);  // all lanes leave the loop
    EXPECT_EQ(s.pc(), 3u);
}

TEST(SimtStack, PartialLoopExitKeepsSpinningLanes)
{
    SimtStack s;
    s.reset(0xf);
    s.advance();  // pc 1
    s.advance();  // pc 2
    // Lanes 0-1 iterate again, lanes 2-3 leave: divergence with the
    // backward branch.
    s.branch(braTo(0, 3), 0x3);
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), 0x3u);
    // Spinning lanes finish the loop on the next pass.
    s.advance();
    s.advance();
    s.branch(braTo(0, 3), 0);
    EXPECT_EQ(s.pc(), 3u);
    EXPECT_EQ(s.activeMask(), 0xfu);
}

TEST(SimtStack, PanicOnLanesOutsideMask)
{
    SimtStack s;
    s.reset(0x3);
    EXPECT_THROW(s.exitLanes(0xf), PanicError);
    EXPECT_THROW(s.branch(braTo(1, 2), 0xff), PanicError);
}

TEST(SimtStack, PanicOnDivergentUniformBranch)
{
    SimtStack s;
    s.reset(0xf);
    Instruction i = braTo(4, 8);
    i.uniform = true;
    EXPECT_THROW(s.branch(i, 0x3), PanicError);
}

TEST(SimtStack, PanicOnUseAfterDone)
{
    SimtStack s;
    s.reset(0x1);
    s.exitLanes(0x1);
    EXPECT_THROW(s.pc(), PanicError);
    EXPECT_THROW(s.advance(), PanicError);
}

}  // namespace
}  // namespace bowsim
