#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/litmus.hpp"
#include "src/sim/gpu.hpp"
#include "src/sync/sync_kernels.hpp"

/**
 * @file
 * The synchronization litmus harness (docs/SYNC.md): outcome
 * classification from abort records, matrix construction, artifact
 * structure, and live golden cells — including the matrix's headline
 * result, a base-scheduler livelock that enabling BOWS resolves.
 */

namespace bowsim {
namespace {

using harness::LitmusCell;
using harness::LitmusCellResult;
using harness::LitmusOptions;
using harness::OccupancyLevel;
using harness::SyncOutcome;

TEST(Litmus, OutcomeNamesRoundTrip)
{
    for (SyncOutcome o :
         {SyncOutcome::Completed, SyncOutcome::Livelocked,
          SyncOutcome::Deadlocked, SyncOutcome::WatchdogKilled}) {
        SyncOutcome back;
        ASSERT_TRUE(harness::parseSyncOutcome(harness::toString(o), &back));
        EXPECT_EQ(back, o);
    }
    SyncOutcome out;
    EXPECT_FALSE(harness::parseSyncOutcome("hung", &out));
    EXPECT_FALSE(harness::parseSyncOutcome("", &out));
}

TEST(Litmus, OccupancyNamesRoundTrip)
{
    for (OccupancyLevel level : harness::allOccupancyLevels()) {
        OccupancyLevel back;
        ASSERT_TRUE(
            harness::parseOccupancy(harness::toString(level), &back));
        EXPECT_EQ(back, level);
    }
    OccupancyLevel out;
    EXPECT_FALSE(harness::parseOccupancy("full", &out));
}

// --- classification ---------------------------------------------------

GpuConfig
classifierConfig()
{
    GpuConfig cfg = harness::defaultLitmusConfig();
    cfg.watchdogCycles = 1'000'000;
    return cfg;
}

/** Functional mode's zero-progress abort is a direct deadlock witness,
 *  whatever the counters say. */
TEST(Litmus, ClassifiesFunctionalNoProgressAsDeadlock)
{
    LaunchAbort abort;
    abort.valid = true;
    abort.stats.warpInstructions = 1000;
    abort.stats.sibInstructions = 900;  // would otherwise be livelock
    EXPECT_EQ(harness::classifySyncAbort(
                  abort, classifierConfig(),
                  "kernel made no progress in functional mode"),
              SyncOutcome::Deadlocked);
}

/** Nothing issued for the trailing quarter of the budget: blocked. */
TEST(Litmus, ClassifiesLongIdleTailAsDeadlock)
{
    LaunchAbort abort;
    abort.valid = true;
    abort.atCycle = 1'000'000;
    abort.lastIssueCycle = 700'000;  // idle 300k >= 250k threshold
    abort.stats.warpInstructions = 1000;
    abort.stats.sibInstructions = 900;
    EXPECT_EQ(harness::classifySyncAbort(abort, classifierConfig(),
                                         "watchdog (deadlock?)"),
              SyncOutcome::Deadlocked);
}

/** Still issuing, spin-dominated stream: livelocked. */
TEST(Litmus, ClassifiesSpinDominatedStreamAsLivelock)
{
    LaunchAbort abort;
    abort.valid = true;
    abort.atCycle = 1'000'000;
    abort.lastIssueCycle = 999'999;
    abort.stats.warpInstructions = 1000;
    abort.stats.sibInstructions = 50;  // exactly the 5% threshold
    EXPECT_EQ(harness::classifySyncAbort(abort, classifierConfig(),
                                         "watchdog (deadlock?)"),
              SyncOutcome::Livelocked);
}

/** Still issuing, below the spin threshold: the budget was too small. */
TEST(Litmus, ClassifiesBusyStreamAsWatchdogKilled)
{
    LaunchAbort abort;
    abort.valid = true;
    abort.atCycle = 1'000'000;
    abort.lastIssueCycle = 999'999;
    abort.stats.warpInstructions = 1000;
    abort.stats.sibInstructions = 49;  // just below 5%
    EXPECT_EQ(harness::classifySyncAbort(abort, classifierConfig(),
                                         "watchdog (deadlock?)"),
              SyncOutcome::WatchdogKilled);
    abort.stats.sibInstructions = 0;
    EXPECT_EQ(harness::classifySyncAbort(abort, classifierConfig(),
                                         "watchdog (deadlock?)"),
              SyncOutcome::WatchdogKilled);
}

// --- matrix construction ----------------------------------------------

TEST(Litmus, DefaultMatrixSpansEveryAxisCombination)
{
    const LitmusOptions opts = harness::defaultLitmusOptions();
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    EXPECT_EQ(cells.size(), 6u * 4u * 2u * 3u * 2u);
    std::set<std::string> ids;
    for (const LitmusCell &cell : cells) {
        ids.insert(cell.id);
        // Per-cell configuration reflects the cell's coordinates.
        EXPECT_EQ(cell.cfg.scheduler, cell.scheduler) << cell.id;
        EXPECT_EQ(cell.cfg.bows.enabled, cell.bows) << cell.id;
        EXPECT_EQ(cell.cfg.numDevices, cell.numDevices) << cell.id;
        EXPECT_GT(cell.geometry.ctas, 0u) << cell.id;
    }
    EXPECT_EQ(ids.size(), cells.size());  // ids are unique
    EXPECT_EQ(cells.front().id, "tas/LRR/base/under/d1");
    EXPECT_TRUE(ids.count("barrier/CAWA/bows/over/d1"));
    EXPECT_TRUE(ids.count("system-barrier/TwoLevel/bows/over/d2"));
}

TEST(Litmus, DeviceAxisScalesOccupancyGeometry)
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {sync::Primitive::GlobalBarrier};
    opts.schedulers = {SchedulerKind::LRR};
    opts.bowsModes = {false};
    opts.occupancies = {harness::OccupancyLevel::Exact};
    opts.devices = {1, 2};
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    ASSERT_EQ(cells.size(), 2u);
    // "exact" means the whole grid is co-resident system-wide, so the
    // two-device cell runs twice the CTAs (chunked evenly, each device
    // holds exactly its own capacity).
    EXPECT_EQ(cells[1].geometry.ctas, cells[0].geometry.ctas * 2);
    EXPECT_EQ(cells[1].cfg.numDevices, 2u);
}

TEST(Litmus, OccupancyLevelsScaleTheGrid)
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {sync::Primitive::TasLock};
    opts.schedulers = {SchedulerKind::GTO};
    opts.bowsModes = {false};
    opts.devices = {1};
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    ASSERT_EQ(cells.size(), 3u);  // under, exact, over
    const unsigned under = cells[0].geometry.ctas;
    const unsigned exact = cells[1].geometry.ctas;
    const unsigned over = cells[2].geometry.ctas;
    EXPECT_LT(under, exact);
    EXPECT_EQ(over, exact * 2);
    EXPECT_EQ(under, exact / 2);
}

// --- live golden cells ------------------------------------------------

LitmusOptions
singleCellOptions(sync::Primitive p, SchedulerKind sched, bool bows,
                  OccupancyLevel level)
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {p};
    opts.schedulers = {sched};
    opts.bowsModes = {bows};
    opts.occupancies = {level};
    opts.devices = {1};
    return opts;
}

LitmusCellResult
runSingleCell(const LitmusOptions &opts)
{
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    EXPECT_EQ(cells.size(), 1u);
    Gpu gpu(cells[0].cfg);
    return harness::runLitmusCell(cells[0], gpu);
}

/** An uncontended under-subscribed cell completes and validates. */
TEST(Litmus, UnderSubscribedTasCompletes)
{
    const LitmusCellResult r = runSingleCell(singleCellOptions(
        sync::Primitive::TasLock, SchedulerKind::LRR, false,
        OccupancyLevel::Under));
    EXPECT_EQ(r.outcome, SyncOutcome::Completed);
    EXPECT_TRUE(r.detail.empty());
    EXPECT_GT(r.stats.outcomes.lockSuccess, 0u);
}

/**
 * The matrix's headline golden cell (docs/SYNC.md): with scarce atomic
 * bandwidth, an over-subscribed TAS lock under pure GTO livelocks —
 * the spinners' CAS storm starves the holder's release — and enabling
 * BOWS (only change) resolves it. Pinned as outcomes, not cycle
 * counts, so the pin survives timing-model tuning that does not change
 * the story.
 */
TEST(Litmus, GoldenOverSubscribedTasGtoLivelocksAndBowsResolves)
{
    const LitmusCellResult base = runSingleCell(singleCellOptions(
        sync::Primitive::TasLock, SchedulerKind::GTO, false,
        OccupancyLevel::Over));
    EXPECT_EQ(base.outcome, SyncOutcome::Livelocked);
    EXPECT_FALSE(base.detail.empty());
    // The abort snapshot is spin-dominated, the livelock witness.
    ASSERT_GT(base.stats.warpInstructions, 0u);
    EXPECT_GE(static_cast<double>(base.stats.sibInstructions) /
                  static_cast<double>(base.stats.warpInstructions),
              harness::kLivelockSibFraction);

    const LitmusCellResult bows = runSingleCell(singleCellOptions(
        sync::Primitive::TasLock, SchedulerKind::GTO, true,
        OccupancyLevel::Over));
    EXPECT_EQ(bows.outcome, SyncOutcome::Completed);
}

/** The software global barrier needs every CTA co-resident: at twice
 *  the resident capacity it can never complete, BOWS or not. */
TEST(Litmus, GoldenOverSubscribedBarrierLivelocksEvenWithBows)
{
    const LitmusCellResult r = runSingleCell(singleCellOptions(
        sync::Primitive::GlobalBarrier, SchedulerKind::LRR, true,
        OccupancyLevel::Over));
    EXPECT_EQ(r.outcome, SyncOutcome::Livelocked);
}

// --- artifact ---------------------------------------------------------

TEST(Litmus, JsonArtifactIsSelfDescribingAndValidates)
{
    LitmusOptions opts = singleCellOptions(sync::Primitive::TasLock,
                                           SchedulerKind::LRR, false,
                                           OccupancyLevel::Under);
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<LitmusCellResult> results(1);
    results[0].outcome = SyncOutcome::Completed;
    results[0].stats.kernel = "sync_tas";

    const harness::Json doc =
        harness::litmusToJson("litmus", opts, cells, results);
    EXPECT_EQ(doc.at("bench").asString(), "litmus");
    EXPECT_EQ(doc.at("exec_mode").asString(), "cycle");
    EXPECT_EQ(doc.at("watchdog_cycles").asInt(), 3'000'000);
    ASSERT_EQ(doc.at("cells").size(), 1u);
    const harness::Json &cell = doc.at("cells").at(0);
    EXPECT_EQ(cell.at("id").asString(), "tas/LRR/base/under/d1");
    EXPECT_EQ(cell.at("devices").asInt(), 1);
    EXPECT_EQ(cell.at("outcome").asString(), "completed");
    EXPECT_FALSE(cell.has("detail"));  // empty detail is omitted
    // Execution knobs must not leak into the artifact: it is
    // byte-identical across --sm-threads / idle-skip by contract.
    EXPECT_FALSE(cell.at("config").has("sm_threads"));
    EXPECT_FALSE(cell.at("config").has("idle_skip"));
    EXPECT_TRUE(cell.at("config").has("atomic_service_period"));

    const harness::CheckResult check =
        harness::checkLitmusMatrix(doc, 1);
    EXPECT_TRUE(check.ok) << check.message;
}

TEST(Litmus, JsonArtifactRecordsAbortDetail)
{
    LitmusOptions opts = singleCellOptions(sync::Primitive::TasLock,
                                           SchedulerKind::GTO, false,
                                           OccupancyLevel::Over);
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<LitmusCellResult> results(1);
    results[0].outcome = SyncOutcome::Livelocked;
    results[0].detail = "hit 3000000-cycle watchdog (deadlock?)";
    const harness::Json doc =
        harness::litmusToJson("litmus", opts, cells, results);
    const harness::Json &cell = doc.at("cells").at(0);
    EXPECT_EQ(cell.at("outcome").asString(), "livelocked");
    EXPECT_EQ(cell.at("detail").asString(),
              "hit 3000000-cycle watchdog (deadlock?)");
}

TEST(Litmus, MismatchedResultVectorPanics)
{
    const LitmusOptions opts = singleCellOptions(
        sync::Primitive::TasLock, SchedulerKind::LRR, false,
        OccupancyLevel::Under);
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    const std::vector<LitmusCellResult> results;  // wrong size
    EXPECT_THROW(harness::litmusToJson("litmus", opts, cells, results),
                 PanicError);
}

}  // namespace
}  // namespace bowsim
