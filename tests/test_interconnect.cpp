#include <gtest/gtest.h>

#include "src/common/config.hpp"
#include "src/mem/dram.hpp"
#include "src/mem/interconnect.hpp"
#include "src/mem/l2_bank.hpp"

/**
 * Direct unit tests for the analytic memory-system building blocks:
 * crossbar port serialization, DRAM channel bandwidth (including
 * write-back traffic), and the config-driven atomic service period at
 * the L2 banks. The end-to-end behavior is covered by the kernel and
 * golden-stats suites; these pin the component contracts the commit
 * phase relies on (injection order == service order at every port).
 */

namespace bowsim {
namespace {

TEST(Interconnect, FixedLatencyWhenPortIsFree)
{
    Interconnect icnt(2, 24);
    EXPECT_EQ(icnt.inject(0, 100), 124u);
    EXPECT_EQ(icnt.packets(), 1u);
}

TEST(Interconnect, SamePortSerializesOnePacketPerCycle)
{
    Interconnect icnt(1, 10);
    // Three same-cycle packets leave one per cycle, in injection order.
    EXPECT_EQ(icnt.inject(0, 100), 110u);
    EXPECT_EQ(icnt.inject(0, 100), 111u);
    EXPECT_EQ(icnt.inject(0, 100), 112u);
    // Once the backlog drains, a later packet sees the bare latency.
    EXPECT_EQ(icnt.inject(0, 200), 210u);
    EXPECT_EQ(icnt.packets(), 4u);
}

TEST(Interconnect, PortsAreIndependent)
{
    Interconnect icnt(2, 5);
    EXPECT_EQ(icnt.inject(0, 100), 105u);
    // Port 0's backlog does not delay port 1.
    EXPECT_EQ(icnt.inject(1, 100), 105u);
    EXPECT_EQ(icnt.inject(0, 100), 106u);
    EXPECT_EQ(icnt.packets(), 3u);
}

TEST(Interconnect, LateArrivalStartsWhenItArrives)
{
    Interconnect icnt(1, 3);
    EXPECT_EQ(icnt.inject(0, 7), 10u);
    // The port freed at cycle 8; an arrival at 9 is not back-dated.
    EXPECT_EQ(icnt.inject(0, 9), 12u);
}

TEST(Dram, ServicePeriodCapsBandwidth)
{
    DramChannel dram(220, 4);
    // Three accesses ready at the same cycle serialize on the 4-cycle
    // service period; each still pays the full access latency.
    EXPECT_EQ(dram.schedule(100), 320u);
    EXPECT_EQ(dram.schedule(100), 324u);
    EXPECT_EQ(dram.schedule(100), 328u);
    EXPECT_EQ(dram.accesses(), 3u);
    EXPECT_EQ(dram.writebacks(), 0u);
}

TEST(Dram, WritebackConsumesBandwidthAndCounts)
{
    DramChannel dram(100, 4);
    dram.scheduleWriteback(50);
    EXPECT_EQ(dram.writebacks(), 1u);
    EXPECT_EQ(dram.accesses(), 1u);
    // The write-back occupied the channel: a demand access ready the
    // same cycle queues behind its service period (50 + 4 + latency).
    EXPECT_EQ(dram.schedule(50), 154u);
    EXPECT_EQ(dram.accesses(), 2u);
    EXPECT_EQ(dram.writebacks(), 1u);
}

TEST(L2Bank, AtomicServicePeriodComesFromConfig)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.atomicServicePeriod = 9;
    L2Bank bank(cfg);

    const MemPacket atom{0x40, MemPacket::Type::Atomic, 0, MemScope::Device, 0};
    L2Bank::AccessInfo first, second;
    (void)bank.access(atom, 100, &first);
    EXPECT_EQ(first.waited, 0u);
    // The second atomic to the bank queues behind the configured
    // serialization period, not the hard-coded default.
    (void)bank.access(atom, 100, &second);
    EXPECT_EQ(second.waited, 9u);
    EXPECT_FALSE(second.miss) << "first atomic should have filled the line";
    EXPECT_EQ(bank.atomics(), 2u);
}

TEST(L2Bank, PlainReadsUseUnitServicePeriod)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.atomicServicePeriod = 9;
    L2Bank bank(cfg);

    const MemPacket rd{0x40, MemPacket::Type::Read, 0, MemScope::Device, 0};
    L2Bank::AccessInfo first, second;
    (void)bank.access(rd, 100, &first);
    (void)bank.access(rd, 100, &second);
    EXPECT_EQ(first.waited, 0u);
    EXPECT_EQ(second.waited, 1u);
}

}  // namespace
}  // namespace bowsim
