#include <gtest/gtest.h>

#include "src/kernels/atm.hpp"
#include "src/kernels/bh_sort.hpp"
#include "src/kernels/bh_tree.hpp"
#include "src/kernels/cp_ds.hpp"
#include "src/kernels/hashtable.hpp"
#include "src/kernels/nw.hpp"
#include "src/kernels/registry.hpp"
#include "src/kernels/syncfree.hpp"
#include "src/kernels/tsp.hpp"

namespace bowsim {
namespace {

GpuConfig
testConfig(SchedulerKind sched = SchedulerKind::GTO, bool bows = false)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    return cfg;
}

TEST(Kernels, HashtableValidatesHighContention)
{
    Gpu gpu(testConfig());
    HashtableParams p;
    p.insertions = 2048;
    p.buckets = 16;  // heavy contention
    p.ctas = 8;
    p.threadsPerCta = 128;
    auto h = makeHashtable(p);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.lockSuccess, 0u);
    EXPECT_GT(s.outcomes.interWarpFail + s.outcomes.intraWarpFail, 0u);
    EXPECT_EQ(s.outcomes.lockSuccess, p.insertions);
}

TEST(Kernels, HashtableValidatesLowContention)
{
    Gpu gpu(testConfig());
    HashtableParams p;
    p.insertions = 2048;
    p.buckets = 4096;
    p.ctas = 8;
    p.threadsPerCta = 128;
    auto h = makeHashtable(p);
    KernelStats s = h->run(gpu);
    EXPECT_EQ(s.outcomes.lockSuccess, p.insertions);
}

TEST(Kernels, HashtableWithSoftwareDelayValidates)
{
    Gpu gpu(testConfig());
    HashtableParams p;
    p.insertions = 1024;
    p.buckets = 64;
    p.ctas = 4;
    p.threadsPerCta = 128;
    p.delayFactor = 50;
    auto h = makeHashtable(p);
    KernelStats s = h->run(gpu);
    EXPECT_EQ(s.outcomes.lockSuccess, p.insertions);
}

TEST(Kernels, AtmConservesMoney)
{
    Gpu gpu(testConfig());
    AtmParams p;
    p.transactions = 2048;
    p.accounts = 128;
    p.ctas = 8;
    p.threadsPerCta = 128;
    auto h = makeAtm(p);
    KernelStats s = h->run(gpu);
    // At least two acquires per transaction; lock1 may be re-acquired
    // each time lock2 fails and forces a release-and-retry.
    EXPECT_GE(s.outcomes.lockSuccess, 2u * p.transactions);
}

TEST(Kernels, TspFindsTheMinimum)
{
    Gpu gpu(testConfig());
    TspParams p;
    p.climbers = 512;
    p.rounds = 2;
    auto h = makeTsp(p);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.lockSuccess, 0u);
}

TEST(Kernels, Nw1MatchesHostReference)
{
    Gpu gpu(testConfig());
    NwParams p;
    p.n = 64;
    auto h = makeNw(p, false);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.waitExitSuccess, 0u);
}

TEST(Kernels, Nw2MatchesHostReference)
{
    Gpu gpu(testConfig());
    NwParams p;
    p.n = 64;
    auto h = makeNw(p, true);
    (void)h->run(gpu);
}

TEST(Kernels, BhTreeBuildsAValidTree)
{
    Gpu gpu(testConfig());
    BhTreeParams p;
    p.bodies = 1500;
    p.ctas = 4;
    p.threadsPerCta = 128;
    auto h = makeBhTree(p);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.lockSuccess, 0u);
}

TEST(Kernels, BhSortSignalsEveryNode)
{
    Gpu gpu(testConfig());
    BhSortParams p;
    p.leaves = 1024;
    p.ctas = 4;
    p.threadsPerCta = 128;
    auto h = makeBhSort(p);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.waitExitSuccess, 0u);
}

TEST(Kernels, CpDsPreservesCoordinateSum)
{
    Gpu gpu(testConfig());
    CpDsParams p;
    p.side = 24;
    p.iterations = 1;
    p.ctas = 4;
    p.threadsPerCta = 128;
    auto h = makeCpDs(p);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.outcomes.lockSuccess, 0u);
}

class SyncFreeKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(SyncFreeKernels, ValidatesAndHasNoLockTraffic)
{
    Gpu gpu(testConfig());
    auto h = makeBenchmark(GetParam(), 0.25);
    KernelStats s = h->run(gpu);
    EXPECT_EQ(s.outcomes.lockSuccess, 0u);
    EXPECT_EQ(s.outcomes.interWarpFail, 0u);
    EXPECT_GT(s.warpInstructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(All, SyncFreeKernels,
                         ::testing::Values("VEC", "KM", "MS", "HL", "RED",
                                           "STEN"),
                         [](const auto &info) { return info.param; });

/** Every sync kernel must validate under every scheduler, with and
 *  without BOWS — BOWS must never change functional results. */
class SyncKernelMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, SchedulerKind, bool>> {};

TEST_P(SyncKernelMatrix, Validates)
{
    const auto &[name, sched, bows] = GetParam();
    Gpu gpu(testConfig(sched, bows));
    auto h = makeBenchmark(name, 0.2);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, SyncKernelMatrix,
    ::testing::Combine(::testing::Values("HT", "ATM", "TSP", "NW1", "NW2",
                                         "TB", "ST", "DS"),
                       ::testing::Values(SchedulerKind::LRR,
                                         SchedulerKind::GTO,
                                         SchedulerKind::CAWA),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               toString(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_BOWS" : "_base");
    });

}  // namespace
}  // namespace bowsim
