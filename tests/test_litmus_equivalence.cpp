#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/litmus.hpp"
#include "src/sim/gpu.hpp"
#include "src/sync/sync_kernels.hpp"

/**
 * @file
 * Litmus differential suite (labeled `slow`): the outcome-matrix
 * artifact is a *result*, so it must be byte-identical across every
 * execution knob (per-simulation SM worker pool, idle-skip), and the
 * primitives' final memory must be schedule-invariant — functional
 * mode, which rotates warps with bounded fairness and no timing, must
 * land on the exact cycle-mode memory image for every completing cell.
 */

namespace bowsim {
namespace {

using harness::LitmusCell;
using harness::LitmusCellResult;
using harness::LitmusOptions;
using harness::OccupancyLevel;
using harness::SyncOutcome;
using sync::Primitive;

/** Runs every cell sequentially under the given execution knobs and
 *  returns the dumped artifact. */
std::string
runMatrixDump(const LitmusOptions &opts, unsigned sm_threads,
              bool idle_skip)
{
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    std::vector<LitmusCellResult> results(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        GpuConfig cfg = cells[i].cfg;
        cfg.smThreads = sm_threads;
        cfg.idleSkip = idle_skip;
        Gpu gpu(cfg);
        results[i] = harness::runLitmusCell(cells[i], gpu);
    }
    return harness::litmusToJson("litmus", opts, cells, results).dump();
}

/**
 * A reduced matrix that still contains every outcome story: a base
 * livelock that BOWS resolves (tas/over), a BOWS-induced livelock
 * (ticket/GTO/bows/over), and the barrier's co-residency livelock.
 * Two cores so the SM worker pool has real work to parallelize.
 */
LitmusOptions
reducedOptions()
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.base.numCores = 2;
    opts.primitives = {Primitive::TasLock, Primitive::TicketLock,
                      Primitive::GlobalBarrier};
    opts.schedulers = {SchedulerKind::GTO};
    return opts;  // 3 x 1 x 2 x 3 x 2 devices = 36 cells
}

TEST(LitmusEquivalence, ArtifactBytesInvariantAcrossExecutionKnobs)
{
    const LitmusOptions opts = reducedOptions();
    const std::string reference = runMatrixDump(opts, 1, true);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(runMatrixDump(opts, 1, false), reference)
        << "idle-skip off diverged";
    EXPECT_EQ(runMatrixDump(opts, 4, true), reference)
        << "sm-threads=4 diverged";
    EXPECT_EQ(runMatrixDump(opts, 4, false), reference)
        << "sm-threads=4 + idle-skip off diverged";
}

/**
 * Cycle vs functional execution: for every cell that completes, the
 * final device memory must match byte for byte (FNV digest) — lock
 * counters, slots, error arrays, and lock words are all
 * schedule-invariant by construction.
 */
TEST(LitmusEquivalence, FunctionalModeMatchesCycleDigests)
{
    LitmusOptions opts = harness::defaultLitmusOptions();
    opts.schedulers = {SchedulerKind::GTO};
    // under + exact: every single-device cell completes in both modes
    // (over-subscription livelocks differ by design: timing-
    // dependent). At two devices the doubled population moves some
    // timing-dependent livelocks down to exact occupancy
    // (docs/SYNC.md, "The measured matrix"); those cells complete
    // functionally — bounded-fairness rotation cannot starve — so the
    // digest comparison only applies where cycle mode completes too.
    opts.occupancies = {OccupancyLevel::Under, OccupancyLevel::Exact};
    const std::vector<LitmusCell> cells =
        harness::buildLitmusCells(opts);
    ASSERT_EQ(cells.size(), 6u * 1u * 2u * 2u * 2u);
    std::size_t compared = 0;
    for (const LitmusCell &cell : cells) {
        Gpu cycle_gpu(cell.cfg);
        const LitmusCellResult rc =
            harness::runLitmusCell(cell, cycle_gpu);

        GpuConfig fcfg = cell.cfg;
        fcfg.execMode = ExecMode::Functional;
        Gpu func_gpu(fcfg);
        const LitmusCellResult rf =
            harness::runLitmusCell(cell, func_gpu);
        ASSERT_EQ(rf.outcome, SyncOutcome::Completed) << cell.id;

        if (cell.numDevices == 1)
            ASSERT_EQ(rc.outcome, SyncOutcome::Completed) << cell.id;
        if (rc.outcome != SyncOutcome::Completed)
            continue;
        EXPECT_EQ(cycle_gpu.mem().digest(), func_gpu.mem().digest())
            << cell.id;
        ++compared;
    }
    // All 24 single-device cells plus the completing two-device ones;
    // the exact count may shift with tuning, but most must compare.
    EXPECT_GE(compared, 24u + 12u);
}

}  // namespace
}  // namespace bowsim
