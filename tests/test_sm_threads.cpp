#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"
#include "src/sim/worker_pool.hpp"
#include "src/trace/ring_recorder.hpp"

/**
 * Fast-suite coverage for the phase-split parallel execution path
 * (docs/PERF.md): WorkerPool scheduling invariants, and end-to-end
 * equivalence of sm-threads > 1 against the sequential loop on small
 * kernels. The exhaustive sweep (every kernel x scheduler x BOWS mode)
 * lives in the slow differential suite; this keeps a representative
 * always-on probe so a determinism break fails the fast gate.
 */

namespace bowsim {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOncePerRound)
{
    WorkerPool pool(4);
    constexpr std::size_t kItems = 103;  // not divisible by 4
    constexpr int kRounds = 200;
    std::vector<std::atomic<int>> hits(kItems);
    WorkerPool::Task task = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    };
    for (int round = 0; round < kRounds; ++round)
        pool.run(kItems, task);
    for (std::size_t i = 0; i < kItems; ++i)
        ASSERT_EQ(hits[i].load(), kRounds) << "index " << i;
}

TEST(WorkerPool, ResultsAreVisibleToCallerWithoutAtomics)
{
    // pool.run() must be a full synchronization point: plain writes made
    // by workers are visible to the caller once run() returns.
    WorkerPool pool(3);
    std::vector<std::uint64_t> out(1000, 0);
    WorkerPool::Task task = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            out[i] = i * i;
    };
    pool.run(out.size(), task);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST(WorkerPool, SmallCountsRunInlineOnTheCaller)
{
    WorkerPool pool(8);
    int calls = 0;  // not atomic: count <= 1 must stay on this thread
    WorkerPool::Task task = [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 1u);
        ++calls;
    };
    pool.run(1, task);
    EXPECT_EQ(calls, 1);
    pool.run(0, task);
    EXPECT_EQ(calls, 1) << "count == 0 must not invoke the task";
}

TEST(WorkerPool, MoreThreadsThanItems)
{
    WorkerPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    WorkerPool::Task task = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    };
    pool.run(hits.size(), task);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

struct RunResult {
    std::uint64_t digest = 0;
    KernelStats stats;
};

RunResult
runKernel(const std::string &name, const GpuConfig &cfg,
          trace::TraceSink *sink = nullptr)
{
    Gpu gpu(cfg);
    if (sink)
        gpu.setTraceSink(sink);
    RunResult r;
    r.stats = makeBenchmark(name, /*scale=*/0.1)->run(gpu);
    r.digest = gpu.mem().digest();
    return r;
}

GpuConfig
smtConfig(unsigned threads)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.bows.enabled = true;
    cfg.collectStallBreakdown = true;
    cfg.smThreads = threads;
    return cfg;
}

void
expectSameRun(const RunResult &par, const RunResult &seq,
              const std::string &label)
{
    ASSERT_EQ(par.digest, seq.digest)
        << label << ": memory image diverged";
    EXPECT_EQ(par.stats.cycles, seq.stats.cycles) << label;
    EXPECT_EQ(par.stats.warpInstructions, seq.stats.warpInstructions)
        << label;
    EXPECT_EQ(par.stats.smCycles, seq.stats.smCycles) << label;
    EXPECT_EQ(par.stats.outcomes.total(), seq.stats.outcomes.total())
        << label;
    EXPECT_EQ(par.stats.outcomes.lockSuccess, seq.stats.outcomes.lockSuccess)
        << label;
    EXPECT_EQ(par.stats.residentWarpCycles, seq.stats.residentWarpCycles)
        << label;
    EXPECT_EQ(par.stats.backedOffWarpCycles, seq.stats.backedOffWarpCycles)
        << label;
    EXPECT_EQ(par.stats.delayLimitCycleSum, seq.stats.delayLimitCycleSum)
        << label;
    EXPECT_EQ(par.stats.l1Accesses, seq.stats.l1Accesses) << label;
    EXPECT_EQ(par.stats.mem.l2Accesses, seq.stats.mem.l2Accesses) << label;
    EXPECT_EQ(par.stats.mem.icntPackets, seq.stats.mem.icntPackets) << label;
    EXPECT_EQ(par.stats.mem.dramAccesses, seq.stats.mem.dramAccesses)
        << label;
    EXPECT_EQ(par.stats.energyNj, seq.stats.energyNj) << label;
    const auto par_stalls = par.stats.stallTotals();
    const auto seq_stalls = seq.stats.stallTotals();
    for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
        EXPECT_EQ(par_stalls[c], seq_stalls[c])
            << label << ": stall cause "
            << trace::toString(static_cast<trace::StallCause>(c));
    }
}

TEST(SmThreads, ParallelRunMatchesSequential)
{
    // HT exercises locks + atomics + global loads/stores, VEC the
    // sync-free streaming path; an uneven thread count forces mixed
    // slice sizes over the four SMs. (The full kernel x scheduler
    // sweep, including ATM, runs in the slow ThreadEquivalence suite.)
    for (const char *name : {"HT", "VEC"}) {
        RunResult seq = runKernel(name, smtConfig(1));
        RunResult par = runKernel(name, smtConfig(3));
        expectSameRun(par, seq, std::string(name) + " sm-threads=3");
    }
}

TEST(SmThreads, ThreadCountClampsToCoreCount)
{
    // More threads than SMs must behave like threads == numCores.
    RunResult seq = runKernel("HT", smtConfig(1));
    RunResult par = runKernel("HT", smtConfig(16));
    expectSameRun(par, seq, "HT sm-threads=16 (clamped)");
}

TEST(SmThreads, TracedEventStreamsAreIdentical)
{
    // The commit phase must reproduce the sequential trace byte for
    // byte: same events, same order, same payloads.
    GpuConfig cfg = smtConfig(1);
    trace::RingRecorder seq_rec;
    RunResult seq = runKernel("HT", cfg, &seq_rec);

    cfg.smThreads = 3;
    trace::RingRecorder par_rec;
    RunResult par = runKernel("HT", cfg, &par_rec);

    ASSERT_EQ(par.digest, seq.digest);
    ASSERT_EQ(par_rec.dropped(), 0u) << "ring too small for exact compare";
    ASSERT_EQ(seq_rec.dropped(), 0u) << "ring too small for exact compare";
    const std::vector<trace::TraceEvent> seq_ev = seq_rec.events();
    const std::vector<trace::TraceEvent> par_ev = par_rec.events();
    ASSERT_EQ(par_ev.size(), seq_ev.size());
    for (std::size_t i = 0; i < seq_ev.size(); ++i) {
        // TraceEvent is packed with explicit padding, so memcmp is exact.
        ASSERT_EQ(std::memcmp(&par_ev[i], &seq_ev[i], sizeof(seq_ev[i])), 0)
            << "event " << i << " diverged: seq kind "
            << static_cast<int>(seq_ev[i].kind) << " @" << seq_ev[i].cycle
            << " sm " << seq_ev[i].sm << ", par kind "
            << static_cast<int>(par_ev[i].kind) << " @" << par_ev[i].cycle
            << " sm " << par_ev[i].sm;
    }
}

TEST(SmThreads, ComposesWithIdleSkip)
{
    GpuConfig cfg = smtConfig(3);
    cfg.idleSkip = true;
    RunResult skip_on = runKernel("HT", cfg);
    cfg.idleSkip = false;
    RunResult skip_off = runKernel("HT", cfg);
    expectSameRun(skip_on, skip_off, "HT sm-threads=3 idle-skip");
}

TEST(SmThreads, RepeatedLaunchesReuseThePool)
{
    // Two launches on one Gpu instance (the pool persists across
    // launches) must both match their sequential counterparts.
    GpuConfig cfg = smtConfig(3);
    Gpu gpu(cfg);
    KernelStats first = makeBenchmark("HT", 0.1)->run(gpu);
    KernelStats second = makeBenchmark("HT", 0.1)->run(gpu);

    GpuConfig ref_cfg = smtConfig(1);
    Gpu ref(ref_cfg);
    KernelStats ref_first = makeBenchmark("HT", 0.1)->run(ref);
    KernelStats ref_second = makeBenchmark("HT", 0.1)->run(ref);

    EXPECT_EQ(first.cycles, ref_first.cycles);
    EXPECT_EQ(second.cycles, ref_second.cycles);
    EXPECT_EQ(gpu.mem().digest(), ref.mem().digest());
}

}  // namespace
}  // namespace bowsim
