#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/log.hpp"
#include "src/cpuref/sync_cpu.hpp"
#include "src/kernels/registry.hpp"
#include "src/sync/primitives.hpp"
#include "src/sync/sync_kernels.hpp"

namespace bowsim {
namespace {

using sync::Primitive;
using sync::SyncGeometry;

GpuConfig
testConfig(SchedulerKind sched = SchedulerKind::LRR, bool bows = false)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    cfg.watchdogCycles = 2'000'000;
    return cfg;
}

SyncGeometry
smallGeometry()
{
    SyncGeometry g;
    g.ctas = 2;
    g.threadsPerCta = 64;
    g.iters = 4;
    return g;
}

TEST(SyncPrimitives, NamesRoundTrip)
{
    for (Primitive p : sync::allPrimitives()) {
        Primitive back;
        ASSERT_TRUE(sync::parsePrimitive(sync::toString(p), &back));
        EXPECT_EQ(back, p);
    }
    Primitive out;
    EXPECT_FALSE(sync::parsePrimitive("mutex", &out));
    EXPECT_FALSE(sync::parsePrimitive("", &out));
}

TEST(SyncPrimitives, KernelNameEncodesGeometry)
{
    SyncGeometry g = smallGeometry();
    EXPECT_EQ(sync::primitiveKernelName(Primitive::TasLock, g),
              "sync_tas_2x64");
    EXPECT_EQ(sync::syncBenchmarkName(Primitive::TicketLock, g),
              "SYNC_ticket_2x64");
}

TEST(SyncPrimitives, GeneratorRejectsBadGeometry)
{
    SyncGeometry g = smallGeometry();
    g.threadsPerCta = 48;  // not a multiple of the warp size
    EXPECT_THROW(sync::primitiveSource(Primitive::TasLock, g),
                 FatalError);
    g = smallGeometry();
    g.ctas = 0;
    EXPECT_THROW(sync::primitiveSource(Primitive::TasLock, g),
                 FatalError);
    g = smallGeometry();
    g.iters = 0;
    EXPECT_THROW(sync::primitiveSource(Primitive::GlobalBarrier, g),
                 FatalError);
}

/** Every primitive validates against its cpuref at a small geometry. */
TEST(SyncPrimitives, AllPrimitivesValidateUnderLrr)
{
    for (Primitive p : sync::allPrimitives()) {
        Gpu gpu(testConfig());
        auto h = sync::makeSyncKernel(p, smallGeometry());
        KernelStats s;
        ASSERT_NO_THROW(s = h->run(gpu)) << sync::toString(p);
        EXPECT_GT(s.warpInstructions, 0u) << sync::toString(p);
    }
}

TEST(SyncPrimitives, AllPrimitivesValidateUnderGtoWithBows)
{
    for (Primitive p : sync::allPrimitives()) {
        Gpu gpu(testConfig(SchedulerKind::GTO, true));
        auto h = sync::makeSyncKernel(p, smallGeometry());
        ASSERT_NO_THROW(h->run(gpu)) << sync::toString(p);
    }
}

/** TAS acquires are CAS with an acquire annotation, so the outcome
 *  counters must see exactly one success per acquisition and, under
 *  contention, some inter-warp failures. */
TEST(SyncPrimitives, TasLockOutcomeCounters)
{
    Gpu gpu(testConfig());
    SyncGeometry g = smallGeometry();
    auto h = sync::makeSyncKernel(Primitive::TasLock, g);
    KernelStats s = h->run(gpu);
    EXPECT_EQ(s.outcomes.lockSuccess, g.totalAcquisitions());
    EXPECT_GT(s.outcomes.interWarpFail, 0u);
    // Lanes 1..31 exit before the lock: no intra-warp contention.
    EXPECT_EQ(s.outcomes.intraWarpFail, 0u);
}

/** The ticket and array locks spin on a wait-annotated flag load. */
TEST(SyncPrimitives, FifoLocksCountWaitExits)
{
    for (Primitive p : {Primitive::TicketLock, Primitive::ArrayLock}) {
        Gpu gpu(testConfig());
        SyncGeometry g = smallGeometry();
        auto h = sync::makeSyncKernel(p, g);
        KernelStats s = h->run(gpu);
        EXPECT_EQ(s.outcomes.waitExitSuccess, g.totalAcquisitions())
            << sync::toString(p);
    }
}

TEST(SyncPrimitives, GroundTruthSibsAnnotated)
{
    for (Primitive p : sync::allPrimitives()) {
        auto h = sync::makeSyncKernel(p, smallGeometry());
        EXPECT_FALSE(h->groundTruthSibs().empty()) << sync::toString(p);
    }
}

TEST(SyncCpuRef, LockReferenceShape)
{
    SyncGeometry g = smallGeometry();
    const cpuref::LockRef ref =
        cpuref::lockReference(Primitive::TicketLock, g);
    EXPECT_EQ(ref.counter, g.totalAcquisitions());
    EXPECT_EQ(ref.slots.size(), g.totalWarps());
    for (Word w : ref.slots)
        EXPECT_EQ(w, g.iters);
    EXPECT_EQ(ref.nextTicket, g.totalAcquisitions());
    EXPECT_EQ(ref.nowServing, g.totalAcquisitions());
    EXPECT_THROW(cpuref::lockReference(Primitive::GlobalBarrier, g),
                 FatalError);
}

TEST(SyncCpuRef, ArrayLockFlagsEndAtNextSlot)
{
    SyncGeometry g = smallGeometry();
    const cpuref::LockRef ref =
        cpuref::lockReference(Primitive::ArrayLock, g);
    ASSERT_EQ(ref.flags.size(), g.totalWarps());
    // After all acquisitions, only the next-to-serve slot is open.
    const std::size_t open = g.totalAcquisitions() % g.totalWarps();
    for (std::size_t i = 0; i < ref.flags.size(); ++i)
        EXPECT_EQ(ref.flags[i], i == open ? 1u : 0u) << i;
}

TEST(SyncCpuRef, BarrierReference)
{
    SyncGeometry g = smallGeometry();
    const cpuref::BarrierRef ref = cpuref::barrierReference(g);
    EXPECT_EQ(ref.count, 0u);
    EXPECT_EQ(ref.release, g.iters);
    EXPECT_EQ(ref.data.size(), g.ctas);
    for (Word w : ref.data)
        EXPECT_EQ(w, g.iters);
}

// --- registry ---------------------------------------------------------

TEST(Registry, SyncVariantsAreRegistered)
{
    EXPECT_TRUE(hasBenchmark("SYNC_tas_8x64"));
    EXPECT_TRUE(hasBenchmark("SYNC_barrier_16x128"));
    EXPECT_TRUE(hasBenchmark("HT"));  // builtins resolve too
    EXPECT_FALSE(hasBenchmark("SYNC_tas_3x96"));
    EXPECT_FALSE(hasBenchmark("no_such_kernel"));
}

TEST(Registry, AllBenchmarkNamesListsBuiltinsAndVariants)
{
    const std::vector<std::string> names = allBenchmarkNames();
    auto has = [&names](const char *n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("HT"));
    EXPECT_TRUE(has("ATM"));
    for (Primitive p : sync::allPrimitives()) {
        SyncGeometry g;
        g.ctas = 8;
        g.threadsPerCta = 64;
        EXPECT_TRUE(has(sync::syncBenchmarkName(p, g).c_str()))
            << sync::toString(p);
    }
}

TEST(Registry, MakeBenchmarkResolvesSyncVariant)
{
    Gpu gpu(testConfig());
    auto h = makeBenchmark("SYNC_ticket_2x64", 1.0);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->name(), "SYNC_ticket_2x64");
    EXPECT_NO_THROW(h->run(gpu));
}

/** The factory's scale argument multiplies the round count. */
TEST(Registry, SyncVariantScaleShrinksWork)
{
    Gpu small_gpu(testConfig());
    Gpu big_gpu(testConfig());
    KernelStats small = makeBenchmark("SYNC_tas_2x64", 0.25)
                            ->run(small_gpu);
    KernelStats big = makeBenchmark("SYNC_tas_2x64", 1.0)->run(big_gpu);
    EXPECT_LT(small.outcomes.lockSuccess, big.outcomes.lockSuccess);
}

TEST(Registry, RegisterBenchmarkRejectsClashes)
{
    // Builtin names stay reserved.
    EXPECT_THROW(
        registerBenchmark("HT", [](double) {
            return sync::makeSyncKernel(Primitive::TasLock,
                                        SyncGeometry{});
        }),
        FatalError);
    // Duplicate variant registration is a bug, not a silent overwrite.
    EXPECT_THROW(
        registerBenchmark("SYNC_tas_8x64", [](double) {
            return sync::makeSyncKernel(Primitive::TasLock,
                                        SyncGeometry{});
        }),
        FatalError);
    EXPECT_THROW(registerBenchmark("", nullptr), FatalError);
}

TEST(Registry, UnknownBenchmarkErrorListsKnownNames)
{
    try {
        makeBenchmark("definitely_not_a_kernel", 1.0);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("definitely_not_a_kernel"),
                  std::string::npos);
        EXPECT_NE(what.find("HT"), std::string::npos);
        EXPECT_NE(what.find("SYNC_tas_8x64"), std::string::npos);
    }
}

}  // namespace
}  // namespace bowsim
