#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/verifier.hpp"
#include "src/kernels/registry.hpp"

namespace bowsim {
namespace {

TEST(Verifier, AssembledProgramsAreValid)
{
    Program p = assemble(R"(
.kernel valid
.param 1
  ld.param.u64 %r1, [0];
LOOP:
  atom.global.cas.b64 %r2, [%r1], 0, 1;
  setp.ne.s64 %p1, %r2, 0;
  .annot spin
  @%p1 bra LOOP;
  exit;
)");
    EXPECT_TRUE(verify(p).empty());
    EXPECT_NO_THROW(verifyOrDie(p));
}

TEST(Verifier, EveryBenchmarkKernelIsValid)
{
    for (const std::string &name : syncKernelNames()) {
        auto h = makeBenchmark(name, 0.1);
        for (const Program *p : h->programs())
            EXPECT_TRUE(verify(*p).empty()) << name;
    }
    for (const std::string &name : syncFreeKernelNames()) {
        auto h = makeBenchmark(name, 0.1);
        for (const Program *p : h->programs())
            EXPECT_TRUE(verify(*p).empty()) << name;
    }
}

TEST(Verifier, CatchesRegisterOutOfBounds)
{
    Program p = assemble(".kernel k\n  mov %r1, %r2;\n  exit;\n");
    p.numRegs = 2;  // %r2 now out of bounds
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("out of bounds"), std::string::npos);
    EXPECT_THROW(verifyOrDie(p), FatalError);
}

TEST(Verifier, CatchesBranchTargetOutOfRange)
{
    Program p = assemble(".kernel k\nL:\n  bra.uni L;\n");
    p.code[0].target = 99;
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
}

TEST(Verifier, CatchesFallOffTheEnd)
{
    Program p = assemble(".kernel k\n  mov %r1, 0;\n  exit;\n");
    p.code.pop_back();  // drop the exit
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("fall off"), std::string::npos);
}

TEST(Verifier, CatchesForwardSpinAnnotation)
{
    Program p = assemble(R"(
.kernel k
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra DONE;
  mov %r1, 1;
DONE:
  exit;
)");
    p.sync.spinBranches.insert(1);  // forward branch marked as spin
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("not backward"), std::string::npos);
}

TEST(Verifier, CatchesWrongOperandShapes)
{
    Program p = assemble(".kernel k\n  add %r1, %r2, %r3;\n  exit;\n");
    p.code[0].src[1] = Operand::none();  // add now has one source
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
}

TEST(Verifier, CatchesBadMemorySize)
{
    Program p =
        assemble(".kernel k\n  ld.global.u64 %r1, [%r2];\n  exit;\n");
    p.code[0].size = 3;
    auto issues = verify(p);
    ASSERT_FALSE(issues.empty());
}

TEST(Disassembler, RoundTripsTheHashtableKernel)
{
    auto h = makeBenchmark("HT", 0.1);
    const Program &orig = *h->programs()[0];
    Program round = assemble(disassemble(orig));
    ASSERT_EQ(orig.length(), round.length());
    for (Pc pc = 0; pc < orig.length(); ++pc) {
        const Instruction &a = orig.at(pc);
        const Instruction &b = round.at(pc);
        EXPECT_EQ(a.op, b.op) << "pc " << pc;
        EXPECT_EQ(a.guard, b.guard) << "pc " << pc;
        EXPECT_EQ(a.guardNegate, b.guardNegate) << "pc " << pc;
        EXPECT_EQ(a.target, b.target) << "pc " << pc;
        EXPECT_EQ(a.reconvergence, b.reconvergence) << "pc " << pc;
        EXPECT_EQ(a.memOffset, b.memOffset) << "pc " << pc;
        EXPECT_EQ(a.isVolatile, b.isVolatile) << "pc " << pc;
    }
    // Annotations survive the round trip.
    EXPECT_EQ(orig.sync.spinBranches, round.sync.spinBranches);
    EXPECT_EQ(orig.sync.lockAcquires, round.sync.lockAcquires);
}

TEST(Disassembler, EmitsReadableText)
{
    Program p = assemble(R"(
.kernel pretty
.param 1
  ld.param.u64 %r1, [0];
LOOP:
  atom.global.cas.b64 %r2, [%r1], 0, 1;
  setp.ne.s64 %p1, %r2, 0;
  @%p1 bra LOOP;
  exit;
)");
    std::string text = disassemble(p);
    EXPECT_NE(text.find("atom.global.cas.b64"), std::string::npos);
    EXPECT_NE(text.find("@%p1 bra"), std::string::npos);
    EXPECT_NE(text.find(".kernel pretty"), std::string::npos);
}

}  // namespace
}  // namespace bowsim
