#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {
namespace {

TEST(Assembler, ParsesAluOps)
{
    Program p = assemble(R"(
.kernel alu
  add %r1, %r2, %r3;
  sub %r4, %r1, 5;
  mul %r5, %r4, %r4;
  mad %r6, %r1, %r2, %r3;
  div %r7, %r6, 2;
  rem %r8, %r7, 3;
  min %r9, %r1, %r2;
  max %r10, %r1, %r2;
  and %r11, %r1, 0xff;
  or %r12, %r1, 1;
  xor %r13, %r1, %r2;
  shl %r14, %r1, 3;
  shr %r15, %r1, 3;
  not %r16, %r1;
  exit;
)");
    ASSERT_EQ(p.code.size(), 15u);
    EXPECT_EQ(p.code[0].op, Opcode::Add);
    EXPECT_EQ(p.code[1].src[1].imm, 5);
    EXPECT_EQ(p.code[3].op, Opcode::Mad);
    EXPECT_EQ(p.code[8].src[1].imm, 0xff);
    EXPECT_EQ(p.code[13].op, Opcode::Not);
    // Register count inferred from the highest index used.
    EXPECT_EQ(p.numRegs, 17u);
}

TEST(Assembler, ParsesGuardsAndPredicates)
{
    Program p = assemble(R"(
.kernel guards
  setp.eq.s64 %p1, %r1, 0;
  @%p1 mov %r2, 1;
  @!%p1 mov %r2, 2;
  selp %r3, %r1, %r2, %p1;
  exit;
)");
    EXPECT_EQ(p.code[0].op, Opcode::Setp);
    EXPECT_EQ(p.code[0].cmp, CmpOp::Eq);
    EXPECT_EQ(p.code[1].guard, 1);
    EXPECT_FALSE(p.code[1].guardNegate);
    EXPECT_TRUE(p.code[2].guardNegate);
    EXPECT_EQ(p.code[3].op, Opcode::Selp);
    EXPECT_EQ(p.code[3].src[2].kind, Operand::Kind::Pred);
}

TEST(Assembler, ParsesMemoryForms)
{
    Program p = assemble(R"(
.kernel mem
.shared 64
  ld.param.u64 %r1, [0];
  ld.global.u64 %r2, [%r1];
  ld.global.u32 %r3, [%r1+8];
  ld.volatile.global.u64 %r4, [%r1-8];
  st.global.u64 [%r1], %r2;
  st.shared.u64 [%r3], %r2;
  ld.shared.u64 %r5, [%r3];
  atom.global.cas.b64 %r6, [%r1], 0, 1;
  atom.global.exch.b64 %r7, [%r1], 0;
  atom.global.add.b64 %r8, [%r1], 5;
  exit;
)");
    EXPECT_EQ(p.code[0].space, MemSpace::Param);
    EXPECT_EQ(p.code[1].space, MemSpace::Global);
    EXPECT_EQ(p.code[2].size, 4u);
    EXPECT_EQ(p.code[2].memOffset, 8);
    EXPECT_TRUE(p.code[3].isVolatile);
    EXPECT_EQ(p.code[3].memOffset, -8);
    EXPECT_EQ(p.code[5].space, MemSpace::Shared);
    EXPECT_EQ(p.code[7].atom, AtomOp::Cas);
    EXPECT_TRUE(p.code[7].src[2].valid());
    EXPECT_EQ(p.code[8].atom, AtomOp::Exch);
    EXPECT_EQ(p.code[9].atom, AtomOp::Add);
}

TEST(Assembler, ResolvesLabelsForwardAndBackward)
{
    Program p = assemble(R"(
.kernel branches
TOP:
  setp.eq.s64 %p1, %r1, 0;
  @%p1 bra DONE;
  sub %r1, %r1, 1;
  bra.uni TOP;
DONE:
  exit;
)");
    EXPECT_EQ(p.code[1].target, 4u);  // DONE
    EXPECT_EQ(p.code[3].target, 0u);  // TOP
    EXPECT_TRUE(p.code[3].uniform);
}

TEST(Assembler, ParsesSpecialRegisters)
{
    Program p = assemble(R"(
.kernel specials
  mov %r0, %tid;
  mov %r1, %ctaid.x;
  mov %r2, %ntid;
  mov %r3, %nctaid;
  mov %r4, %laneid;
  mov %r5, %warpid;
  mov %r6, %smid;
  exit;
)");
    EXPECT_EQ(static_cast<SpecialReg>(p.code[0].src[0].index),
              SpecialReg::TidX);
    EXPECT_EQ(static_cast<SpecialReg>(p.code[1].src[0].index),
              SpecialReg::CtaIdX);
    EXPECT_EQ(static_cast<SpecialReg>(p.code[6].src[0].index),
              SpecialReg::SmId);
}

TEST(Assembler, AnnotationsTagTheNextInstruction)
{
    Program p = assemble(R"(
.kernel annots
LOOP:
  .annot acquire
  atom.global.cas.b64 %r1, [%r2], 0, 1;
  .annot wait
  setp.eq.s64 %p1, %r1, 0;
  .annot spin
  @!%p1 bra LOOP;
  exit;
)");
    EXPECT_TRUE(p.sync.lockAcquires.count(0));
    EXPECT_TRUE(p.sync.waitChecks.count(1));
    EXPECT_TRUE(p.sync.spinBranches.count(2));
}

TEST(Assembler, SyncRegionCoversRange)
{
    Program p = assemble(R"(
.kernel region
  mov %r1, 0;
.annot sync_begin
  add %r1, %r1, 1;
  add %r1, %r1, 2;
.annot sync_end
  add %r1, %r1, 3;
  exit;
)");
    EXPECT_FALSE(p.sync.isSyncPc(0));
    EXPECT_TRUE(p.sync.isSyncPc(1));
    EXPECT_TRUE(p.sync.isSyncPc(2));
    EXPECT_FALSE(p.sync.isSyncPc(3));
}

TEST(Assembler, AppendsExitWhenKernelFallsOffTheEnd)
{
    Program p = assemble(R"(
.kernel noexit
  mov %r1, 1;
)");
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(p.code.back().op, Opcode::Exit);
}

TEST(Assembler, DirectivesSetResources)
{
    Program p = assemble(R"(
.kernel resources
.reg 40
.pred 6
.shared 2048
.param 3
  mov %r1, 0;
  exit;
)");
    EXPECT_EQ(p.name, "resources");
    EXPECT_EQ(p.numRegs, 40u);
    EXPECT_EQ(p.numPreds, 6u);
    EXPECT_EQ(p.sharedBytes, 2048u);
    EXPECT_EQ(p.numParams, 3u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    Program p = assemble(R"(
// leading comment
.kernel comments

  mov %r1, 1;   // trailing comment
  exit;
)");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, ErrorOnUnknownOpcode)
{
    EXPECT_THROW(assemble(".kernel k\n  frobnicate %r1;\n"), FatalError);
}

TEST(Assembler, ErrorOnUndefinedLabel)
{
    EXPECT_THROW(assemble(".kernel k\n  bra NOWHERE;\n"), FatalError);
}

TEST(Assembler, ErrorOnDuplicateLabel)
{
    EXPECT_THROW(assemble(".kernel k\nL: mov %r1, 0;\nL: exit;\n"),
                 FatalError);
}

TEST(Assembler, ErrorOnRegisterOverflowAgainstDeclaration)
{
    EXPECT_THROW(assemble(".kernel k\n.reg 4\n  mov %r9, 0;\n  exit;\n"),
                 FatalError);
}

TEST(Assembler, ErrorOnBadImmediate)
{
    EXPECT_THROW(assemble(".kernel k\n  mov %r1, zzz;\n  exit;\n"),
                 FatalError);
}

TEST(Assembler, ErrorOnMisplacedAnnotation)
{
    EXPECT_THROW(assemble(".kernel k\n  .annot spin\n  mov %r1, 0;\n"),
                 FatalError);
    EXPECT_THROW(
        assemble(".kernel k\n  .annot acquire\n  mov %r1, 0;\n"),
        FatalError);
    EXPECT_THROW(assemble(".kernel k\n  .annot wait\n  mov %r1, 0;\n"),
                 FatalError);
}

TEST(Assembler, ErrorOnUnterminatedSyncRegion)
{
    EXPECT_THROW(
        assemble(".kernel k\n.annot sync_begin\n  mov %r1, 0;\n  exit;\n"),
        FatalError);
}

TEST(Assembler, ErrorOnEmptyKernel)
{
    EXPECT_THROW(assemble(".kernel k\n"), FatalError);
}

TEST(Assembler, ErrorOnStoreToParamSpace)
{
    EXPECT_THROW(
        assemble(".kernel k\n  st.param.u64 [0], %r1;\n  exit;\n"),
        FatalError);
}

TEST(Assembler, NegativeAndHexImmediates)
{
    Program p = assemble(R"(
.kernel imm
  mov %r1, -42;
  mov %r2, 0xdead;
  exit;
)");
    EXPECT_EQ(p.code[0].src[0].imm, -42);
    EXPECT_EQ(p.code[1].src[0].imm, 0xdead);
}

TEST(Assembler, InstructionToStringRoundtrips)
{
    Program p = assemble(R"(
.kernel tostr
  @%p1 setp.lt.s64 %p2, %r1, 4;
  exit;
)");
    std::string s = toString(p.code[0]);
    EXPECT_NE(s.find("setp.lt"), std::string::npos);
    EXPECT_NE(s.find("@%p1"), std::string::npos);
}

}  // namespace
}  // namespace bowsim
