#include <gtest/gtest.h>

#include "src/arch/scoreboard.hpp"
#include "src/common/log.hpp"

namespace bowsim {
namespace {

Instruction
movInst(int dst, int src)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = Operand::reg(dst);
    i.src[0] = Operand::reg(src);
    return i;
}

Instruction
setpInst(int dstPred, int src)
{
    Instruction i;
    i.op = Opcode::Setp;
    i.dst = Operand::pred(dstPred);
    i.src[0] = Operand::reg(src);
    i.src[1] = Operand::immediate(0);
    return i;
}

TEST(Scoreboard, CleanBoardAllowsIssue)
{
    Scoreboard sb(8, 2);
    EXPECT_TRUE(sb.canIssue(movInst(1, 2)));
    EXPECT_TRUE(sb.idle());
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb(8, 2);
    Instruction producer = movInst(1, 2);
    sb.reserve(producer);
    EXPECT_FALSE(sb.canIssue(movInst(3, 1)));  // reads %r1
    sb.release(producer);
    EXPECT_TRUE(sb.canIssue(movInst(3, 1)));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(8, 2);
    Instruction producer = movInst(1, 2);
    sb.reserve(producer);
    EXPECT_FALSE(sb.canIssue(movInst(1, 3)));  // writes %r1 again
    sb.release(producer);
    EXPECT_TRUE(sb.canIssue(movInst(1, 3)));
}

TEST(Scoreboard, IndependentRegistersDoNotBlock)
{
    Scoreboard sb(8, 2);
    sb.reserve(movInst(1, 2));
    EXPECT_TRUE(sb.canIssue(movInst(3, 4)));
}

TEST(Scoreboard, PredicatePendingBlocksGuardedInstruction)
{
    Scoreboard sb(8, 2);
    Instruction setp = setpInst(1, 2);
    sb.reserve(setp);
    Instruction guarded = movInst(3, 4);
    guarded.guard = 1;
    EXPECT_FALSE(sb.canIssue(guarded));
    sb.release(setp);
    EXPECT_TRUE(sb.canIssue(guarded));
}

TEST(Scoreboard, PredicateSourceBlocksSelp)
{
    Scoreboard sb(8, 2);
    Instruction setp = setpInst(0, 1);
    sb.reserve(setp);
    Instruction selp;
    selp.op = Opcode::Selp;
    selp.dst = Operand::reg(2);
    selp.src[0] = Operand::reg(3);
    selp.src[1] = Operand::reg(4);
    selp.src[2] = Operand::pred(0);
    EXPECT_FALSE(sb.canIssue(selp));
    sb.release(setp);
    EXPECT_TRUE(sb.canIssue(selp));
}

TEST(Scoreboard, OutstandingCountsReservations)
{
    Scoreboard sb(8, 2);
    Instruction a = movInst(1, 2);
    Instruction b = setpInst(0, 3);
    sb.reserve(a);
    sb.reserve(b);
    EXPECT_EQ(sb.outstanding(), 2u);
    sb.release(a);
    EXPECT_EQ(sb.outstanding(), 1u);
    sb.release(b);
    EXPECT_TRUE(sb.idle());
}

TEST(Scoreboard, StoreHasNoDestinationAndNeverReserves)
{
    Scoreboard sb(8, 2);
    Instruction st;
    st.op = Opcode::St;
    st.src[0] = Operand::reg(1);
    st.src[1] = Operand::reg(2);
    sb.reserve(st);
    EXPECT_TRUE(sb.idle());
}

TEST(Scoreboard, PanicsOnDoubleReserveAndIdleRelease)
{
    Scoreboard sb(8, 2);
    Instruction a = movInst(1, 2);
    sb.reserve(a);
    EXPECT_THROW(sb.reserve(a), PanicError);
    sb.release(a);
    EXPECT_THROW(sb.release(a), PanicError);
}

TEST(Scoreboard, ImmediateAndSpecialOperandsNeverBlock)
{
    Scoreboard sb(8, 2);
    sb.reserve(movInst(1, 2));
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = Operand::reg(3);
    i.src[0] = Operand::special(SpecialReg::TidX);
    EXPECT_TRUE(sb.canIssue(i));
    i.src[0] = Operand::immediate(5);
    EXPECT_TRUE(sb.canIssue(i));
}

}  // namespace
}  // namespace bowsim
