#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

namespace bowsim {
namespace {

GpuConfig
syncConfig(SchedulerKind sched = SchedulerKind::GTO, bool bows = false)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    return cfg;
}

/** A minimal spin-lock kernel: every thread increments a counter inside
 *  a global critical section. */
constexpr const char *kSpinCounter = R"(
.kernel spin_counter
.param 2
  ld.param.u64 %r1, [0];         // mutex
  ld.param.u64 %r2, [8];         // counter
  mov %r20, 0;
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra SKIP;
.annot sync_end
  ld.global.u64 %r4, [%r2];
  add %r4, %r4, 1;
  st.global.u64 [%r2], %r4;
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r5, [%r1], 0;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
.annot sync_end
  exit;
)";

TEST(SimSync, SpinLockCriticalSectionIsExact)
{
    Gpu gpu(syncConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{128, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 4 * 128);
    EXPECT_EQ(s.outcomes.lockSuccess, 4u * 128u);
    EXPECT_GT(s.outcomes.intraWarpFail, 0u);  // one global lock per warp
}

TEST(SimSync, IntraVsInterWarpClassification)
{
    // One warp, one lock: all failures must be intra-warp.
    Gpu gpu(syncConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    EXPECT_GT(s.outcomes.intraWarpFail, 0u);
    EXPECT_EQ(s.outcomes.interWarpFail, 0u);
}

TEST(SimSync, WaitAndSignalAcrossWarps)
{
    // Warp 1 spins until warp 0 publishes a flag (Fig. 6c pattern).
    Gpu gpu(syncConfig());
    Addr flag = gpu.malloc(8);
    Addr out = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel wait_signal
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
  mov %r3, %warpid;
  setp.eq.s64 %p1, %r3, 0;
  @%p1 bra PRODUCER;
WAIT:
  ld.volatile.global.u64 %r4, [%r1];
  .annot wait
  setp.ne.s64 %p2, %r4, 0;
  .annot spin
  @!%p2 bra WAIT;
  st.global.u64 [%r2], %r4;
  exit;
PRODUCER:
  mov %r5, 0;
DELAYLOOP:
  add %r5, %r5, 1;
  setp.lt.s64 %p3, %r5, 200;
  @%p3 bra DELAYLOOP;
  membar;
  st.global.u64 [%r1], 77;
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{64, 1, 1},
                               {static_cast<Word>(flag),
                                static_cast<Word>(out)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, out, 8);
    EXPECT_EQ(v, 77);
    EXPECT_GT(s.outcomes.waitExitFail, 0u);
    EXPECT_EQ(s.outcomes.waitExitSuccess, 32u);  // one per waiting lane
}

TEST(SimSync, DdosConfirmsTightSpinWithinOneKernel)
{
    Gpu gpu(syncConfig());
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    EXPECT_DOUBLE_EQ(s.ddos.tsdr(), 1.0);
    EXPECT_DOUBLE_EQ(s.ddos.fsdr(), 0.0);
}

TEST(SimSync, BowsThrottlesSpinRetries)
{
    GpuConfig base = syncConfig(SchedulerKind::GTO, false);
    GpuConfig throttled = syncConfig(SchedulerKind::GTO, true);
    throttled.bows.adaptive = false;
    throttled.bows.delayLimit = 2000;

    auto run = [](const GpuConfig &cfg) {
        Gpu gpu(cfg);
        Addr mutex = gpu.malloc(8);
        Addr counter = gpu.malloc(8);
        Program prog = assemble(kSpinCounter);
        return gpu.launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                          {static_cast<Word>(mutex),
                           static_cast<Word>(counter)});
    };
    KernelStats b = run(base);
    KernelStats t = run(throttled);
    // Throttling cuts failed acquire attempts. (The single global lock
    // serializes critical sections, so total runtime may grow and bound
    // how far the count can drop — the 2000-cycle minimum spacing still
    // removes a solid share of the retries.)
    double b_fails = static_cast<double>(b.outcomes.interWarpFail +
                                         b.outcomes.intraWarpFail);
    EXPECT_LT(t.outcomes.interWarpFail + t.outcomes.intraWarpFail,
              0.85 * b_fails);
    // And with it, the atomic traffic.
    EXPECT_LT(t.mem.atomics, b.mem.atomics);
}

TEST(SimSync, BackedOffWarpsStillRunWhenNothingElseIsReady)
{
    // Single resident warp: BOWS may deprioritize it, but with no
    // competition it must keep issuing (no self-starvation).
    GpuConfig cfg = syncConfig(SchedulerKind::GTO, true);
    cfg.bows.adaptive = false;
    cfg.bows.delayLimit = 0;
    Gpu gpu(cfg);
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 32);
    EXPECT_GT(s.backedOffFraction(), 0.0);
}

TEST(SimSync, OracleModeNeedsNoDetectionPhase)
{
    GpuConfig cfg = syncConfig(SchedulerKind::GTO, true);
    cfg.spinDetect = SpinDetect::Oracle;
    Gpu gpu(cfg);
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{2, 1, 1}, Dim3{64, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    // SIB executions are recognized from the very first iteration.
    EXPECT_GT(s.sibInstructions, 0u);
}

TEST(SimSync, SibCountsTrackSpinning)
{
    Gpu gpu(syncConfig(SchedulerKind::GTO, true));
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    Program prog = assemble(kSpinCounter);
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    EXPECT_GT(s.sibInstructions, 0u);
    EXPECT_LT(s.sibInstructions, s.warpInstructions);
}

TEST(SimSync, LrrAndGtoBothCompleteUnderContention)
{
    for (SchedulerKind sched :
         {SchedulerKind::LRR, SchedulerKind::GTO, SchedulerKind::CAWA}) {
        Gpu gpu(syncConfig(sched));
        Addr mutex = gpu.malloc(8);
        Addr counter = gpu.malloc(8);
        Program prog = assemble(kSpinCounter);
        gpu.launch(prog, Dim3{2, 1, 1}, Dim3{128, 1, 1},
                   {static_cast<Word>(mutex), static_cast<Word>(counter)});
        Word v = 0;
        gpu.memcpyFromDevice(&v, counter, 8);
        EXPECT_EQ(v, 2 * 128) << toString(sched);
    }
}

TEST(SimSync, MembarDoesNotBlockProgress)
{
    Gpu gpu(syncConfig());
    Addr out = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel fences
.param 1
  ld.param.u64 %r1, [0];
  st.global.u64 [%r1], 1;
  membar;
  ld.global.u64 %r2, [%r1];
  add %r2, %r2, 1;
  membar;
  st.global.u64 [%r1], %r2;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{1, 1, 1},
               {static_cast<Word>(out)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, out, 8);
    EXPECT_EQ(v, 2);
}

}  // namespace
}  // namespace bowsim
