#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

namespace bowsim {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    return cfg;
}

Program
trivialKernel()
{
    return assemble(R"(
.kernel trivial
.param 1
  ld.param.u64 %r1, [0];
  st.global.u64 [%r1], 1;
  exit;
)");
}

TEST(GpuApi, MemcpyRoundTrip)
{
    Gpu gpu(smallConfig());
    Addr a = gpu.malloc(256);
    std::vector<std::uint8_t> in(256);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i);
    gpu.memcpyToDevice(a, in.data(), in.size());
    std::vector<std::uint8_t> out(256);
    gpu.memcpyFromDevice(out.data(), a, out.size());
    EXPECT_EQ(in, out);
}

TEST(GpuApi, LaunchRejectsMissingParams)
{
    Gpu gpu(smallConfig());
    Program p = trivialKernel();
    EXPECT_THROW(gpu.launch(p, Dim3{1, 1, 1}, Dim3{32, 1, 1}, {}),
                 FatalError);
}

TEST(GpuApi, LaunchRejectsEmptyGeometry)
{
    Gpu gpu(smallConfig());
    Program p = trivialKernel();
    Addr a = gpu.malloc(8);
    EXPECT_THROW(gpu.launch(p, Dim3{0, 1, 1}, Dim3{32, 1, 1},
                            {static_cast<Word>(a)}),
                 FatalError);
    EXPECT_THROW(gpu.launch(p, Dim3{1, 1, 1}, Dim3{0, 1, 1},
                            {static_cast<Word>(a)}),
                 FatalError);
}

TEST(GpuApi, LaunchRejectsBlockExceedingSmLimits)
{
    Gpu gpu(smallConfig());
    Program p = trivialKernel();
    Addr a = gpu.malloc(8);
    // 1536 threads/SM max on Fermi: a 2048-thread CTA cannot fit.
    EXPECT_THROW(gpu.launch(p, Dim3{1, 1, 1}, Dim3{2048, 1, 1},
                            {static_cast<Word>(a)}),
                 FatalError);
}

TEST(GpuApi, LaunchRejectsSharedMemoryOverflow)
{
    Gpu gpu(smallConfig());
    Program p = trivialKernel();
    p.sharedBytes = 1024 * 1024;  // exceeds the 48 KiB per-SM budget
    Addr a = gpu.malloc(8);
    EXPECT_THROW(gpu.launch(p, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                            {static_cast<Word>(a)}),
                 FatalError);
}

TEST(GpuApi, MemoryPersistsAcrossLaunches)
{
    Gpu gpu(smallConfig());
    Addr a = gpu.malloc(8);
    Program inc = assemble(R"(
.kernel inc
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
    for (int i = 0; i < 3; ++i)
        gpu.launch(inc, Dim3{1, 1, 1}, Dim3{1, 1, 1},
                   {static_cast<Word>(a)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, a, 8);
    EXPECT_EQ(v, 3);
}

TEST(GpuApi, WatchdogCatchesSimtInducedDeadlock)
{
    // The canonical SIMT-induced deadlock (Section IV of the paper):
    //   while (atomicCAS(mutex, 0, 1) != 0) ;
    //   ...critical section...
    //   atomicExch(mutex, 0);
    // With two lanes contending for the same lock, the winner parks at
    // the reconvergence point while the loser spins forever waiting for
    // a release that can never execute.
    GpuConfig cfg = smallConfig();
    cfg.watchdogCycles = 100000;
    Gpu gpu(cfg);
    Addr mutex = gpu.malloc(8);
    Program deadlock = assemble(R"(
.kernel simt_deadlock
.param 1
  ld.param.u64 %r1, [0];
TRY:
  atom.global.cas.b64 %r2, [%r1], 0, 1;
  setp.ne.s64 %p1, %r2, 0;
  @%p1 bra TRY;
  atom.global.exch.b64 %r3, [%r1], 0;
  exit;
)");
    EXPECT_THROW(gpu.launch(deadlock, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                            {static_cast<Word>(mutex)}),
                 FatalError);
}

TEST(GpuApi, SingleLaneTightSpinIsFine)
{
    // The same while(CAS) loop is safe when only one thread runs it.
    Gpu gpu(smallConfig());
    Addr mutex = gpu.malloc(8);
    Program p = assemble(R"(
.kernel single
.param 1
  ld.param.u64 %r1, [0];
TRY:
  atom.global.cas.b64 %r2, [%r1], 0, 1;
  setp.ne.s64 %p1, %r2, 0;
  @%p1 bra TRY;
  atom.global.exch.b64 %r3, [%r1], 0;
  exit;
)");
    KernelStats s = gpu.launch(p, Dim3{1, 1, 1}, Dim3{1, 1, 1},
                               {static_cast<Word>(mutex)});
    EXPECT_GT(s.cycles, 0u);
}

TEST(GpuApi, MoreCtasThanResidencyDrainsInWaves)
{
    Gpu gpu(smallConfig());
    Addr counter = gpu.malloc(8);
    Program inc = assemble(R"(
.kernel inc
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
    // 64 CTAs on 2 SMs with an 8-CTA residency cap: several waves.
    gpu.launch(inc, Dim3{64, 1, 1}, Dim3{64, 1, 1},
               {static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 64 * 64);
}

TEST(GpuApi, PascalConfigHasTableIiGeometry)
{
    GpuConfig cfg = makeGtx1080TiConfig();
    EXPECT_EQ(cfg.numCores, 28u);
    EXPECT_EQ(cfg.maxThreadsPerCore, 2048u);
    EXPECT_EQ(cfg.numSchedulersPerCore, 4u);
    EXPECT_EQ(cfg.numRegsPerCore, 65536u);
    GpuConfig fermi = makeGtx480Config();
    EXPECT_EQ(fermi.numCores, 15u);
    EXPECT_EQ(fermi.maxWarpsPerCore(), 48u);
}

TEST(GpuApi, RegisterPressureLimitsResidency)
{
    // 32768 regs/SM and a 256-thread CTA using 64 regs/thread leaves
    // room for exactly 2 resident CTAs; the kernel must still finish.
    GpuConfig cfg = smallConfig();
    Gpu gpu(cfg);
    Program p = assemble(R"(
.kernel hungry
.reg 64
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r63, [%r1], 1;
  exit;
)");
    Addr counter = gpu.malloc(8);
    gpu.launch(p, Dim3{8, 1, 1}, Dim3{256, 1, 1},
               {static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 8 * 256);
}

}  // namespace
}  // namespace bowsim
