#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/isa/verifier.hpp"
#include "src/sim/gpu.hpp"

/**
 * Differential property test: random structured, race-free kernels run
 * on the full SIMT simulator must produce exactly the results of a
 * scalar per-thread reference interpreter. Every thread reads only a
 * shared immutable input array and writes only its own output cell, so
 * scalar semantics and SIMT semantics coincide — any mismatch is a bug
 * in the assembler, the CFG/IPDOM pass, the reconvergence stack, the
 * scoreboard or the pipeline.
 */

namespace bowsim {
namespace {

constexpr unsigned kInputWords = 256;

/** Generates a random structured kernel (nested ifs and bounded loops). */
class ProgramGenerator {
  public:
    explicit ProgramGenerator(std::uint32_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        os_ << ".kernel random_prog\n.param 3\n";
        // %r0 = global tid, kept live throughout.
        os_ << "  mov %r0, %ctaid;\n";
        os_ << "  mov %r1, %ntid;\n";
        os_ << "  mad %r0, %r0, %r1, %tid;\n";
        os_ << "  ld.param.u64 %r10, [0];\n";  // input base
        os_ << "  ld.param.u64 %r11, [8];\n";  // output base
        os_ << "  ld.param.u64 %r12, [16];\n"; // thread count
        os_ << "  setp.ge.s64 %p0, %r0, %r12;\n";
        os_ << "  @%p0 exit;\n";
        // Seed the working registers %r2..%r6 from tid and input.
        for (int r = 2; r <= 6; ++r) {
            if (flip()) {
                os_ << "  mov %r" << r << ", " << smallImm() << ";\n";
            } else {
                loadInput(r);
            }
        }
        emitBlock(2);
        // Fold the working registers and store to out[tid].
        os_ << "  xor %r2, %r2, %r3;\n";
        os_ << "  add %r2, %r2, %r4;\n";
        os_ << "  xor %r2, %r2, %r5;\n";
        os_ << "  add %r2, %r2, %r6;\n";
        os_ << "  shl %r7, %r0, 3;\n";
        os_ << "  add %r7, %r11, %r7;\n";
        os_ << "  st.global.u64 [%r7], %r2;\n";
        os_ << "  exit;\n";
        return os_.str();
    }

  private:
    bool flip() { return rng_() & 1; }
    int workReg() { return 2 + static_cast<int>(rng_() % 5); }
    Word smallImm() { return static_cast<Word>(rng_() % 64) - 16; }

    void
    loadInput(int dst)
    {
        // in[(tid + K) % kInputWords] — race-free shared reads.
        unsigned k = rng_() % kInputWords;
        os_ << "  add %r8, %r0, " << k << ";\n";
        os_ << "  and %r8, %r8, " << (kInputWords - 1) << ";\n";
        os_ << "  shl %r8, %r8, 3;\n";
        os_ << "  add %r8, %r10, %r8;\n";
        os_ << "  ld.global.u64 %r" << dst << ", [%r8];\n";
    }

    void
    emitAlu()
    {
        static const char *ops[] = {"add", "sub", "mul", "and", "or",
                                    "xor", "min", "max", "shl", "shr",
                                    "div", "rem"};
        const char *op = ops[rng_() % 12];
        int d = workReg();
        int a = workReg();
        if (std::string(op) == "shl" || std::string(op) == "shr") {
            os_ << "  " << op << " %r" << d << ", %r" << a << ", "
                << (rng_() % 8) << ";\n";
        } else if (flip()) {
            os_ << "  " << op << " %r" << d << ", %r" << a << ", %r"
                << workReg() << ";\n";
        } else {
            os_ << "  " << op << " %r" << d << ", %r" << a << ", "
                << smallImm() << ";\n";
        }
    }

    void
    emitIf(unsigned depth)
    {
        static const char *cmps[] = {"lt", "gt", "eq", "ne", "le", "ge"};
        unsigned label = nextLabel_++;
        bool has_else = flip();
        os_ << "  setp." << cmps[rng_() % 6] << ".s64 %p1, %r"
            << workReg() << ", " << smallImm() << ";\n";
        os_ << "  @%p1 bra T" << label << ";\n";
        emitBlock(depth - 1);  // else side (fall-through)
        if (has_else) {
            os_ << "  bra.uni J" << label << ";\n";
            os_ << "T" << label << ":\n";
            emitBlock(depth - 1);
            os_ << "J" << label << ":\n";
        } else {
            os_ << "T" << label << ":\n";
        }
        os_ << "  nop;\n";
    }

    void
    emitLoop(unsigned depth)
    {
        unsigned label = nextLabel_++;
        unsigned trips = 1 + rng_() % 5;
        os_ << "  mov %r9, 0;\n";
        os_ << "LP" << label << ":\n";
        emitBlock(depth - 1);
        os_ << "  add %r9, %r9, 1;\n";
        os_ << "  setp.lt.s64 %p2, %r9, " << trips << ";\n";
        os_ << "  @%p2 bra LP" << label << ";\n";
    }

    void
    emitBlock(unsigned depth)
    {
        unsigned stmts = 1 + rng_() % 4;
        for (unsigned i = 0; i < stmts; ++i) {
            unsigned roll = rng_() % 10;
            if (depth > 0 && roll < 2) {
                emitIf(depth);
            } else if (depth > 0 && roll == 2 && !inLoop_) {
                // One non-nested loop keeps trip counts predictable.
                inLoop_ = true;
                emitLoop(depth);
                inLoop_ = false;
            } else {
                emitAlu();
            }
        }
    }

    std::mt19937 rng_;
    std::ostringstream os_;
    unsigned nextLabel_ = 0;
    bool inLoop_ = false;
};

/** Scalar per-thread reference interpreter for the generated subset. */
class ScalarRef {
  public:
    ScalarRef(const Program &prog, const std::vector<Word> &input,
              unsigned num_threads, unsigned block_size)
        : prog_(prog), input_(input), numThreads_(num_threads),
          blockSize_(block_size)
    {
    }

    /** Returns out[tid] or nullopt if the thread exited before storing. */
    Word
    run(unsigned tid) const
    {
        std::vector<Word> regs(prog_.numRegs, 0);
        std::vector<bool> preds(prog_.numPreds, false);
        Word stored = 0;
        auto read = [&](const Operand &op) -> Word {
            switch (op.kind) {
              case Operand::Kind::Reg:
                return regs[op.index];
              case Operand::Kind::Imm:
                return op.imm;
              case Operand::Kind::Pred:
                return preds[op.index] ? 1 : 0;
              case Operand::Kind::Special:
                switch (static_cast<SpecialReg>(op.index)) {
                  case SpecialReg::TidX:
                    return tid % blockSize_;
                  case SpecialReg::CtaIdX:
                    return tid / blockSize_;
                  case SpecialReg::NTidX:
                    return blockSize_;
                  case SpecialReg::NCtaIdX:
                    return (numThreads_ + blockSize_ - 1) / blockSize_;
                  case SpecialReg::LaneId:
                    return tid % kWarpSize;
                  case SpecialReg::WarpId:
                    return (tid % blockSize_) / kWarpSize;
                  default:
                    return 0;
                }
              default:
                return 0;
            }
        };
        auto wrap = [](std::uint64_t v) { return static_cast<Word>(v); };

        Pc pc = 0;
        std::uint64_t steps = 0;
        while (pc < prog_.length()) {
            if (++steps > 2'000'000)
                throw std::runtime_error("reference interpreter ran away");
            const Instruction &inst = prog_.at(pc);
            bool execute = true;
            if (inst.guard >= 0) {
                bool g = preds[inst.guard];
                execute = inst.guardNegate ? !g : g;
            }
            if (!execute) {
                ++pc;
                continue;
            }
            Word a = inst.src[0].valid() ? read(inst.src[0]) : 0;
            Word b = inst.src[1].valid() ? read(inst.src[1]) : 0;
            Word c = inst.src[2].valid() ? read(inst.src[2]) : 0;
            switch (inst.op) {
              case Opcode::Mov: regs[inst.dst.index] = a; break;
              case Opcode::Add:
                regs[inst.dst.index] = wrap(std::uint64_t(a) + b);
                break;
              case Opcode::Sub:
                regs[inst.dst.index] = wrap(std::uint64_t(a) - b);
                break;
              case Opcode::Mul:
                regs[inst.dst.index] = wrap(std::uint64_t(a) * b);
                break;
              case Opcode::Mad:
                regs[inst.dst.index] =
                    wrap(std::uint64_t(a) * b + std::uint64_t(c));
                break;
              case Opcode::Div:
                regs[inst.dst.index] =
                    b == 0 ? 0
                    : b == -1 ? wrap(-std::uint64_t(a))
                              : a / b;
                break;
              case Opcode::Rem:
                regs[inst.dst.index] =
                    b == 0 ? 0 : (b == -1 ? 0 : a % b);
                break;
              case Opcode::Min:
                regs[inst.dst.index] = std::min(a, b);
                break;
              case Opcode::Max:
                regs[inst.dst.index] = std::max(a, b);
                break;
              case Opcode::And: regs[inst.dst.index] = a & b; break;
              case Opcode::Or: regs[inst.dst.index] = a | b; break;
              case Opcode::Xor: regs[inst.dst.index] = a ^ b; break;
              case Opcode::Not: regs[inst.dst.index] = ~a; break;
              case Opcode::Shl:
                regs[inst.dst.index] =
                    wrap(std::uint64_t(a) << (b & 63));
                break;
              case Opcode::Shr:
                regs[inst.dst.index] =
                    wrap(std::uint64_t(a) >> (b & 63));
                break;
              case Opcode::Setp: {
                bool r = false;
                switch (inst.cmp) {
                  case CmpOp::Eq: r = a == b; break;
                  case CmpOp::Ne: r = a != b; break;
                  case CmpOp::Lt: r = a < b; break;
                  case CmpOp::Le: r = a <= b; break;
                  case CmpOp::Gt: r = a > b; break;
                  case CmpOp::Ge: r = a >= b; break;
                }
                preds[inst.dst.index] = r;
                break;
              }
              case Opcode::Selp:
                regs[inst.dst.index] =
                    preds[inst.src[2].index] ? a : b;
                break;
              case Opcode::Bra:
                pc = inst.target;
                continue;
              case Opcode::Exit:
                return stored;
              case Opcode::Nop:
                break;
              case Opcode::Ld:
                if (inst.space == MemSpace::Param) {
                    unsigned idx = static_cast<unsigned>(
                        (a + inst.memOffset) / 8);
                    regs[inst.dst.index] = params_[idx];
                } else {
                    // Only input-array reads occur in generated code.
                    Addr addr = static_cast<Addr>(a + inst.memOffset);
                    unsigned idx =
                        static_cast<unsigned>((addr - inputBase_) / 8);
                    regs[inst.dst.index] = input_.at(idx);
                }
                break;
              case Opcode::St:
                stored = b;  // out[tid]
                break;
              default:
                throw std::runtime_error("unexpected opcode in ref");
            }
            ++pc;
        }
        return stored;
    }

    void
    setMemory(Addr input_base, const std::vector<Word> &params)
    {
        inputBase_ = input_base;
        params_ = params;
    }

  private:
    const Program &prog_;
    const std::vector<Word> &input_;
    unsigned numThreads_;
    unsigned blockSize_;
    Addr inputBase_ = 0;
    std::vector<Word> params_;
};

/**
 * Seeds under test. BOWSIM_TEST_SEED (a single seed or a comma-separated
 * list) overrides the default 1..32 range, so a seed printed by a failing
 * run can be replayed in isolation:
 *
 *     BOWSIM_TEST_SEED=17 ./tests/bowsim_tests \
 *         --gtest_filter='Seeds/RandomPrograms.*'
 */
std::vector<std::uint32_t>
testSeeds()
{
    std::vector<std::uint32_t> seeds;
    if (const char *env = std::getenv("BOWSIM_TEST_SEED")) {
        std::stringstream ss(env);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) {
                seeds.push_back(static_cast<std::uint32_t>(
                    std::strtoul(tok.c_str(), nullptr, 10)));
            }
        }
    }
    if (seeds.empty()) {
        for (std::uint32_t s = 1; s < 33; ++s)
            seeds.push_back(s);
    }
    return seeds;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomPrograms, SimMatchesScalarReference)
{
    const std::uint32_t seed = GetParam();
    ProgramGenerator gen(seed);
    std::string source = gen.generate();
    Program prog = assemble(source);
    verifyOrDie(prog);

    const unsigned block = 64;
    const unsigned ctas = 3;
    const unsigned threads = block * ctas - 17;  // ragged edge

    std::vector<Word> input(kInputWords);
    std::mt19937_64 data_rng(seed ^ 0xbeef);
    for (auto &w : input)
        w = static_cast<Word>(data_rng() % 100000) - 50000;

    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    Gpu gpu(cfg);
    Addr in = gpu.malloc(kInputWords * 8);
    Addr out = gpu.malloc((threads + 32) * 8);
    gpu.memcpyToDevice(in, input.data(), kInputWords * 8);
    std::vector<Word> params = {static_cast<Word>(in),
                                static_cast<Word>(out),
                                static_cast<Word>(threads)};
    gpu.launch(prog, Dim3{ctas, 1, 1}, Dim3{block, 1, 1}, params);
    std::vector<Word> got(threads);
    gpu.memcpyFromDevice(got.data(), out, threads * 8);

    ScalarRef ref(prog, input, threads, block);
    ref.setMemory(in, params);
    for (unsigned tid = 0; tid < threads; ++tid) {
        ASSERT_EQ(got[tid], ref.run(tid))
            << "seed " << seed << " thread " << tid
            << " (replay with BOWSIM_TEST_SEED=" << seed
            << ")\nprogram:\n"
            << source;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::ValuesIn(testSeeds()));

TEST(RandomPrograms, GeneratedProgramsPassTheVerifier)
{
    for (std::uint32_t seed = 100; seed < 140; ++seed) {
        ProgramGenerator gen(seed);
        Program prog = assemble(gen.generate());
        EXPECT_TRUE(verify(prog).empty()) << "seed " << seed;
    }
}

TEST(RandomPrograms, DisassembleReassembleIsEquivalent)
{
    for (std::uint32_t seed = 200; seed < 216; ++seed) {
        ProgramGenerator gen(seed);
        Program prog = assemble(gen.generate());
        Program round = assemble(disassemble(prog));
        ASSERT_EQ(prog.length(), round.length()) << "seed " << seed;
        for (Pc pc = 0; pc < prog.length(); ++pc) {
            EXPECT_EQ(prog.at(pc).op, round.at(pc).op) << "pc " << pc;
            EXPECT_EQ(prog.at(pc).target, round.at(pc).target);
            EXPECT_EQ(prog.at(pc).guard, round.at(pc).guard);
        }
    }
}

}  // namespace
}  // namespace bowsim
