#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/kernels/registry.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/gpu.hpp"
#include "src/trace/ring_recorder.hpp"

/**
 * Differential tests (labeled `slow`): run the same kernel under many
 * configurations and require bit-identical final device memory.
 *
 * Two properties are enforced:
 *  - Schedule invariance: for kernels whose result is independent of
 *    interleaving, every scheduler × BOWS combination must converge to
 *    the same memory image. This catches lost updates, broken atomics,
 *    and lock protocols that only work under one issue order.
 *  - Observer effect: attaching a trace sink (and the stall-breakdown
 *    accounting it enables) must not change simulation results for ANY
 *    kernel, including the order-dependent ones.
 *  - Skip equivalence: the idle-cycle fast-forward (docs/PERF.md) must
 *    be invisible — every kernel, scheduler, and BOWS mode must produce
 *    identical memory, cycles, outcomes, and stall accounting with
 *    idleSkip on and off.
 */

namespace bowsim {
namespace {

constexpr double kScale = 0.25;

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names = syncKernelNames();
    for (const std::string &n : syncFreeKernelNames())
        names.push_back(n);
    return names;
}

/**
 * Kernels whose final memory is independent of warp interleaving: the
 * remaining sync kernels (TB tree build, DS allocation, HT chaining)
 * commit pointer links in acquisition order, so their memory image is
 * schedule-dependent by design and only the observer-effect property
 * applies to them.
 */
const std::vector<std::string> kInvariantKernels = {
    "ST", "ATM", "TSP", "NW1", "NW2",
    "VEC", "KM", "MS", "HL", "RED", "STEN",
};

GpuConfig
diffConfig(SchedulerKind sched, bool bows)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    return cfg;
}

struct RunResult {
    std::uint64_t digest;
    KernelStats stats;
};

RunResult
runKernel(const std::string &name, const GpuConfig &cfg,
          trace::TraceSink *sink = nullptr)
{
    Gpu gpu(cfg);
    if (sink)
        gpu.setTraceSink(sink);
    RunResult r;
    r.stats = makeBenchmark(name, kScale)->run(gpu);
    r.digest = gpu.mem().digest();
    return r;
}

class ScheduleInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(ScheduleInvariance, FinalMemoryIdenticalAcrossSchedulers)
{
    const std::string &name = GetParam();
    const SchedulerKind scheds[] = {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA};
    bool have_ref = false;
    std::uint64_t ref = 0;
    for (SchedulerKind sched : scheds) {
        for (bool bows : {false, true}) {
            RunResult r = runKernel(name, diffConfig(sched, bows));
            if (!have_ref) {
                ref = r.digest;
                have_ref = true;
                continue;
            }
            ASSERT_EQ(r.digest, ref)
                << name << " memory diverged under " << toString(sched)
                << (bows ? "+BOWS" : "");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ScheduleInvariance,
                         ::testing::ValuesIn(kInvariantKernels),
                         [](const auto &info) { return info.param; });

class ObserverEffect : public ::testing::TestWithParam<std::string> {};

TEST_P(ObserverEffect, TracedRunIdenticalToUntraced)
{
    const std::string &name = GetParam();
    GpuConfig cfg = diffConfig(SchedulerKind::GTO, /*bows=*/true);
    RunResult plain = runKernel(name, cfg);

    trace::RingRecorder rec;
    RunResult traced = runKernel(name, cfg, &rec);
    EXPECT_GT(rec.total(), 0u) << "sink was not attached";

    ASSERT_EQ(traced.digest, plain.digest)
        << name << ": tracing changed the final memory image";
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.warpInstructions, plain.stats.warpInstructions);
    EXPECT_EQ(traced.stats.outcomes.total(), plain.stats.outcomes.total());

    // collectStallBreakdown without a sink takes the same accounting
    // paths; it must be equally invisible.
    GpuConfig stall_cfg = cfg;
    stall_cfg.collectStallBreakdown = true;
    RunResult counted = runKernel(name, stall_cfg);
    ASSERT_EQ(counted.digest, plain.digest)
        << name << ": stall accounting changed the final memory image";
    EXPECT_EQ(counted.stats.cycles, plain.stats.cycles);
    EXPECT_TRUE(counted.stats.hasStallBreakdown());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ObserverEffect,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

class SkipEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SkipEquivalence, FastForwardIsInvisible)
{
    const std::string &name = GetParam();
    const SchedulerKind scheds[] = {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA};
    for (SchedulerKind sched : scheds) {
        for (bool bows : {false, true}) {
            GpuConfig cfg = diffConfig(sched, bows);
            // Stall breakdown on in BOTH runs: the per-cause counters
            // are bulk-updated across skipped gaps and must match the
            // per-cycle classification exactly.
            cfg.collectStallBreakdown = true;
            cfg.idleSkip = true;
            RunResult on = runKernel(name, cfg);
            cfg.idleSkip = false;
            RunResult off = runKernel(name, cfg);

            const std::string label =
                name + " under " + std::string(toString(sched)) +
                (bows ? "+BOWS" : "");
            ASSERT_EQ(on.digest, off.digest)
                << label << ": skip changed the final memory image";
            ASSERT_EQ(on.stats.cycles, off.stats.cycles) << label;
            EXPECT_EQ(on.stats.warpInstructions,
                      off.stats.warpInstructions)
                << label;
            EXPECT_EQ(on.stats.outcomes.total(), off.stats.outcomes.total())
                << label;
            EXPECT_EQ(on.stats.outcomes.lockSuccess,
                      off.stats.outcomes.lockSuccess)
                << label;
            EXPECT_EQ(on.stats.residentWarpCycles,
                      off.stats.residentWarpCycles)
                << label;
            EXPECT_EQ(on.stats.backedOffWarpCycles,
                      off.stats.backedOffWarpCycles)
                << label;
            EXPECT_EQ(on.stats.delayLimitCycleSum,
                      off.stats.delayLimitCycleSum)
                << label;
            EXPECT_EQ(on.stats.smCycles, off.stats.smCycles) << label;
            ASSERT_TRUE(on.stats.hasStallBreakdown());
            ASSERT_TRUE(off.stats.hasStallBreakdown());
            const auto on_stalls = on.stats.stallTotals();
            const auto off_stalls = off.stats.stallTotals();
            for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
                EXPECT_EQ(on_stalls[c], off_stalls[c])
                    << label << ": stall cause "
                    << trace::toString(static_cast<trace::StallCause>(c));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, SkipEquivalence,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

class ThreadEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadEquivalence, ParallelSmExecutionIsInvisible)
{
    // Phase-split determinism contract (docs/PERF.md): sm-threads is a
    // pure execution knob. Every kernel, scheduler, and BOWS mode must
    // produce identical memory, cycles, outcomes, and stall accounting
    // whether SM compute phases run sequentially or on a worker pool.
    const std::string &name = GetParam();
    const SchedulerKind scheds[] = {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA};
    for (SchedulerKind sched : scheds) {
        for (bool bows : {false, true}) {
            GpuConfig cfg = diffConfig(sched, bows);
            cfg.collectStallBreakdown = true;
            cfg.smThreads = 1;
            RunResult seq = runKernel(name, cfg);
            cfg.smThreads = 4;
            RunResult par = runKernel(name, cfg);

            const std::string label =
                name + " under " + std::string(toString(sched)) +
                (bows ? "+BOWS" : "") + " sm-threads=4";
            ASSERT_EQ(par.digest, seq.digest)
                << label << ": parallel run changed the memory image";
            ASSERT_EQ(par.stats.cycles, seq.stats.cycles) << label;
            EXPECT_EQ(par.stats.warpInstructions,
                      seq.stats.warpInstructions)
                << label;
            EXPECT_EQ(par.stats.outcomes.total(), seq.stats.outcomes.total())
                << label;
            EXPECT_EQ(par.stats.outcomes.lockSuccess,
                      seq.stats.outcomes.lockSuccess)
                << label;
            EXPECT_EQ(par.stats.outcomes.interWarpFail,
                      seq.stats.outcomes.interWarpFail)
                << label;
            EXPECT_EQ(par.stats.residentWarpCycles,
                      seq.stats.residentWarpCycles)
                << label;
            EXPECT_EQ(par.stats.backedOffWarpCycles,
                      seq.stats.backedOffWarpCycles)
                << label;
            EXPECT_EQ(par.stats.delayLimitCycleSum,
                      seq.stats.delayLimitCycleSum)
                << label;
            EXPECT_EQ(par.stats.smCycles, seq.stats.smCycles) << label;
            EXPECT_EQ(par.stats.l1Accesses, seq.stats.l1Accesses) << label;
            EXPECT_EQ(par.stats.mem.l2Accesses, seq.stats.mem.l2Accesses)
                << label;
            EXPECT_EQ(par.stats.mem.dramAccesses,
                      seq.stats.mem.dramAccesses)
                << label;
            EXPECT_EQ(par.stats.mem.icntPackets, seq.stats.mem.icntPackets)
                << label;
            EXPECT_EQ(par.stats.energyNj, seq.stats.energyNj) << label;
            ASSERT_TRUE(par.stats.hasStallBreakdown());
            ASSERT_TRUE(seq.stats.hasStallBreakdown());
            const auto par_stalls = par.stats.stallTotals();
            const auto seq_stalls = seq.stats.stallTotals();
            for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
                EXPECT_EQ(par_stalls[c], seq_stalls[c])
                    << label << ": stall cause "
                    << trace::toString(static_cast<trace::StallCause>(c));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ThreadEquivalence,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

class FunctionalEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(FunctionalEquivalence, FunctionalModeMatchesCycleMode)
{
    // Functional mode's correctness anchor (docs/PERF.md, "Execution
    // modes"): the ISA-semantics-only interpreter must land on the same
    // final memory image as full cycle-accurate simulation for every
    // schedule-invariant kernel, under every scheduler × BOWS cycle
    // configuration. Order-dependent kernels (TB, DS, HT) are covered
    // by the validation pass below instead — their memory image differs
    // even between cycle-mode schedulers.
    const std::string &name = GetParam();

    GpuConfig fcfg = diffConfig(SchedulerKind::GTO, /*bows=*/false);
    fcfg.execMode = ExecMode::Functional;
    // run() throws FatalError when the harness's host-reference
    // validation fails, so every kernel is checked for correctness even
    // when its digest is schedule-dependent.
    RunResult func = runKernel(name, fcfg);
    EXPECT_EQ(func.stats.cycles, 0u);

    // Functional execution is deterministic in full: memory image and
    // every outcome counter.
    RunResult func2 = runKernel(name, fcfg);
    ASSERT_EQ(func2.digest, func.digest)
        << name << ": functional mode is not deterministic";
    EXPECT_EQ(func2.stats.outcomes.lockSuccess,
              func.stats.outcomes.lockSuccess);
    EXPECT_EQ(func2.stats.outcomes.interWarpFail,
              func.stats.outcomes.interWarpFail);
    EXPECT_EQ(func2.stats.outcomes.intraWarpFail,
              func.stats.outcomes.intraWarpFail);
    EXPECT_EQ(func2.stats.outcomes.waitExitSuccess,
              func.stats.outcomes.waitExitSuccess);
    EXPECT_EQ(func2.stats.outcomes.waitExitFail,
              func.stats.outcomes.waitExitFail);
    EXPECT_EQ(func2.stats.warpInstructions, func.stats.warpInstructions);

    const bool invariant =
        std::find(kInvariantKernels.begin(), kInvariantKernels.end(),
                  name) != kInvariantKernels.end();
    if (!invariant)
        return;

    const SchedulerKind scheds[] = {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA};
    for (SchedulerKind sched : scheds) {
        for (bool bows : {false, true}) {
            RunResult cyc = runKernel(name, diffConfig(sched, bows));
            ASSERT_EQ(func.digest, cyc.digest)
                << name << ": functional memory diverged from cycle mode "
                << toString(sched) << (bows ? "+BOWS" : "");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, FunctionalEquivalence,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

struct SampledCase {
    const char *kernel;
    /** Window/period scaled to the short diff-test inputs; the default
     *  4000/10000 pair targets fig01-sized runs and would fit at most
     *  one window here. */
    Cycle window;
    std::uint64_t period;
};

class SampledAccuracy : public ::testing::TestWithParam<SampledCase> {};

TEST_P(SampledAccuracy, EstimateTracksCycleIpc)
{
    // Sampled mode's detailed windows are seeded from functional
    // checkpoints: the estimate must land near the true cycle-mode IPC
    // on spin-heavy kernels, and must never perturb results.
    const SampledCase &c = GetParam();
    GpuConfig cyc = diffConfig(SchedulerKind::GTO, /*bows=*/false);
    RunResult truth = runKernel(c.kernel, cyc);

    GpuConfig smp = cyc;
    smp.execMode = ExecMode::Sampled;
    smp.sampleWindow = c.window;
    smp.samplePeriod = c.period;
    RunResult est = runKernel(c.kernel, smp);
    ASSERT_EQ(est.digest, truth.digest)
        << c.kernel << ": sampled mode perturbed the result";
    ASSERT_GT(est.stats.sampledWindows, 0u);
    ASSERT_GT(est.stats.ipcEst, 0.0);
    // Tolerance: CI95 half-width plus 30% of truth. Checkpoint-seeded
    // windows carry cold-start and phase-placement bias (documented in
    // docs/PERF.md, "Sampled accuracy") that the CI alone does not
    // cover on these scaled-down inputs; at fig01 scale the estimate
    // lands within 10% on moderate-contention points.
    const double tol = est.stats.ipcCi95 + 0.30 * truth.stats.ipc();
    EXPECT_NEAR(est.stats.ipcEst, truth.stats.ipc(), tol)
        << c.kernel << ": sampled IPC estimate is off (windows="
        << est.stats.sampledWindows << ", ci95=" << est.stats.ipcCi95
        << ")";
}

INSTANTIATE_TEST_SUITE_P(Kernels, SampledAccuracy,
                         ::testing::Values(SampledCase{"ATM", 1000, 2000},
                                           SampledCase{"ST", 2000, 10000},
                                           SampledCase{"VEC", 1000, 2000}),
                         [](const auto &info) { return info.param.kernel; });

TEST(MetricsEquivalence, SampledSeriesIdenticalAcrossExecutionModes)
{
    // Metrics determinism contract (docs/METRICS.md): the sampled time
    // series is a function of the simulated schedule only. For a
    // spin-heavy kernel (ATM: serialized critical sections, BOWS
    // back-off, long idle-skippable gaps), the serialized series must be
    // byte-identical across sequential vs pooled SM execution and with
    // the idle-cycle fast-forward on or off.
    GpuConfig base = diffConfig(SchedulerKind::GTO, /*bows=*/true);
    std::string ref;
    std::string ref_label;
    for (unsigned threads : {1u, 4u}) {
        for (bool skip : {true, false}) {
            GpuConfig cfg = base;
            cfg.smThreads = threads;
            cfg.idleSkip = skip;
            Gpu gpu(cfg);
            metrics::MetricsSampler sampler(1000);
            gpu.setMetrics(&sampler);
            makeBenchmark("ATM", kScale)->run(gpu);
            ASSERT_GT(sampler.registry().rows().size(), 1u);
            const std::string series = sampler.serialize();
            const std::string label =
                "sm-threads=" + std::to_string(threads) +
                (skip ? " skip=on" : " skip=off");
            if (ref.empty()) {
                ref = series;
                ref_label = label;
                continue;
            }
            ASSERT_EQ(series, ref)
                << "metrics series diverged: " << label << " vs "
                << ref_label;
        }
    }
}

TEST(Determinism, RepeatedRunsAreBitIdentical)
{
    // Belt and braces under the differential umbrella: two fresh Gpu
    // instances with the same seed-free configuration must agree.
    GpuConfig cfg = diffConfig(SchedulerKind::GTO, /*bows=*/true);
    RunResult a = runKernel("HT", cfg);
    RunResult b = runKernel("HT", cfg);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

}  // namespace
}  // namespace bowsim
