#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"
#include "src/trace/ring_recorder.hpp"

/**
 * Differential tests (labeled `slow`): run the same kernel under many
 * configurations and require bit-identical final device memory.
 *
 * Two properties are enforced:
 *  - Schedule invariance: for kernels whose result is independent of
 *    interleaving, every scheduler × BOWS combination must converge to
 *    the same memory image. This catches lost updates, broken atomics,
 *    and lock protocols that only work under one issue order.
 *  - Observer effect: attaching a trace sink (and the stall-breakdown
 *    accounting it enables) must not change simulation results for ANY
 *    kernel, including the order-dependent ones.
 */

namespace bowsim {
namespace {

constexpr double kScale = 0.25;

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names = syncKernelNames();
    for (const std::string &n : syncFreeKernelNames())
        names.push_back(n);
    return names;
}

/**
 * Kernels whose final memory is independent of warp interleaving: the
 * remaining sync kernels (TB tree build, DS allocation, HT chaining)
 * commit pointer links in acquisition order, so their memory image is
 * schedule-dependent by design and only the observer-effect property
 * applies to them.
 */
const std::vector<std::string> kInvariantKernels = {
    "ST", "ATM", "TSP", "NW1", "NW2",
    "VEC", "KM", "MS", "HL", "RED", "STEN",
};

GpuConfig
diffConfig(SchedulerKind sched, bool bows)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    return cfg;
}

struct RunResult {
    std::uint64_t digest;
    KernelStats stats;
};

RunResult
runKernel(const std::string &name, const GpuConfig &cfg,
          trace::TraceSink *sink = nullptr)
{
    Gpu gpu(cfg);
    if (sink)
        gpu.setTraceSink(sink);
    RunResult r;
    r.stats = makeBenchmark(name, kScale)->run(gpu);
    r.digest = gpu.mem().digest();
    return r;
}

class ScheduleInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(ScheduleInvariance, FinalMemoryIdenticalAcrossSchedulers)
{
    const std::string &name = GetParam();
    const SchedulerKind scheds[] = {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA};
    bool have_ref = false;
    std::uint64_t ref = 0;
    for (SchedulerKind sched : scheds) {
        for (bool bows : {false, true}) {
            RunResult r = runKernel(name, diffConfig(sched, bows));
            if (!have_ref) {
                ref = r.digest;
                have_ref = true;
                continue;
            }
            ASSERT_EQ(r.digest, ref)
                << name << " memory diverged under " << toString(sched)
                << (bows ? "+BOWS" : "");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ScheduleInvariance,
                         ::testing::ValuesIn(kInvariantKernels),
                         [](const auto &info) { return info.param; });

class ObserverEffect : public ::testing::TestWithParam<std::string> {};

TEST_P(ObserverEffect, TracedRunIdenticalToUntraced)
{
    const std::string &name = GetParam();
    GpuConfig cfg = diffConfig(SchedulerKind::GTO, /*bows=*/true);
    RunResult plain = runKernel(name, cfg);

    trace::RingRecorder rec;
    RunResult traced = runKernel(name, cfg, &rec);
    EXPECT_GT(rec.total(), 0u) << "sink was not attached";

    ASSERT_EQ(traced.digest, plain.digest)
        << name << ": tracing changed the final memory image";
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.warpInstructions, plain.stats.warpInstructions);
    EXPECT_EQ(traced.stats.outcomes.total(), plain.stats.outcomes.total());

    // collectStallBreakdown without a sink takes the same accounting
    // paths; it must be equally invisible.
    GpuConfig stall_cfg = cfg;
    stall_cfg.collectStallBreakdown = true;
    RunResult counted = runKernel(name, stall_cfg);
    ASSERT_EQ(counted.digest, plain.digest)
        << name << ": stall accounting changed the final memory image";
    EXPECT_EQ(counted.stats.cycles, plain.stats.cycles);
    EXPECT_TRUE(counted.stats.hasStallBreakdown());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ObserverEffect,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

TEST(Determinism, RepeatedRunsAreBitIdentical)
{
    // Belt and braces under the differential umbrella: two fresh Gpu
    // instances with the same seed-free configuration must agree.
    GpuConfig cfg = diffConfig(SchedulerKind::GTO, /*bows=*/true);
    RunResult a = runKernel("HT", cfg);
    RunResult b = runKernel("HT", cfg);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

}  // namespace
}  // namespace bowsim
