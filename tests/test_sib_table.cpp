#include <gtest/gtest.h>

#include "src/core/ddos/sib_table.hpp"

namespace bowsim {
namespace {

DdosConfig
tableCfg(unsigned entries = 16, unsigned threshold = 4)
{
    DdosConfig cfg;
    cfg.sibTableEntries = entries;
    cfg.confidenceThreshold = threshold;
    return cfg;
}

TEST(SibTable, ConfirmsAfterThresholdSpinningExecutions)
{
    SibTable t(tableCfg());
    for (int i = 0; i < 3; ++i) {
        t.onSpinningBranch(0x98);
        EXPECT_FALSE(t.isConfirmed(0x98)) << "after " << i + 1;
    }
    t.onSpinningBranch(0x98);
    EXPECT_TRUE(t.isConfirmed(0x98));
}

TEST(SibTable, NonSpinningExecutionsDecayConfidence)
{
    SibTable t(tableCfg());
    t.onSpinningBranch(0x98);
    t.onSpinningBranch(0x98);
    t.onNonSpinningBranch(0x98);
    t.onNonSpinningBranch(0x98);
    // Confidence back to zero: entry dropped, two more spinning hits do
    // not confirm.
    t.onSpinningBranch(0x98);
    t.onSpinningBranch(0x98);
    EXPECT_FALSE(t.isConfirmed(0x98));
}

TEST(SibTable, AliasingNoiseSuppressedByDecay)
{
    // Alternating spinning/non-spinning observations never confirm.
    SibTable t(tableCfg());
    for (int i = 0; i < 20; ++i) {
        t.onSpinningBranch(0x40);
        t.onNonSpinningBranch(0x40);
    }
    EXPECT_FALSE(t.isConfirmed(0x40));
}

TEST(SibTable, NonSpinningOnUnknownBranchIsIgnored)
{
    SibTable t(tableCfg());
    t.onNonSpinningBranch(0x123);
    EXPECT_EQ(t.size(), 0u);
}

TEST(SibTable, TracksMultipleBranches)
{
    SibTable t(tableCfg());
    for (int i = 0; i < 4; ++i) {
        t.onSpinningBranch(0x10);
        t.onSpinningBranch(0x20);
    }
    EXPECT_TRUE(t.isConfirmed(0x10));
    EXPECT_TRUE(t.isConfirmed(0x20));
    EXPECT_EQ(t.size(), 2u);
}

TEST(SibTable, CapacityEvictsLowestConfidenceUnconfirmed)
{
    SibTable t(tableCfg(2, 4));
    t.onSpinningBranch(0x10);
    t.onSpinningBranch(0x10);
    t.onSpinningBranch(0x20);
    // Table full; a new branch evicts the weaker entry (0x20).
    t.onSpinningBranch(0x30);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.entries().count(0x10));
    EXPECT_TRUE(t.entries().count(0x30));
    EXPECT_FALSE(t.entries().count(0x20));
}

TEST(SibTable, ConfirmedEntriesAreNotEvicted)
{
    SibTable t(tableCfg(1, 2));
    t.onSpinningBranch(0x10);
    t.onSpinningBranch(0x10);
    ASSERT_TRUE(t.isConfirmed(0x10));
    // A new branch cannot displace the confirmed SIB.
    for (int i = 0; i < 4; ++i)
        t.onSpinningBranch(0x20);
    EXPECT_TRUE(t.isConfirmed(0x10));
    EXPECT_FALSE(t.isConfirmed(0x20));
}

TEST(SibTable, ConfidenceSaturatesAtThreshold)
{
    SibTable t(tableCfg(16, 4));
    for (int i = 0; i < 100; ++i)
        t.onSpinningBranch(0x10);
    EXPECT_EQ(t.entries().at(0x10).confidence, 4u);
}

TEST(SibTable, PeakOccupancyHighWaterMark)
{
    SibTable t(tableCfg());
    for (Pc pc = 0; pc < 5; ++pc)
        t.onSpinningBranch(pc);
    EXPECT_EQ(t.peakOccupancy(), 5u);
}

/** Property: threshold t requires exactly t spinning executions. */
class SibThreshold : public ::testing::TestWithParam<unsigned> {};

TEST_P(SibThreshold, ExactlyThresholdHitsConfirm)
{
    unsigned threshold = GetParam();
    SibTable t(tableCfg(16, threshold));
    for (unsigned i = 0; i + 1 < threshold; ++i) {
        t.onSpinningBranch(0x50);
        EXPECT_FALSE(t.isConfirmed(0x50));
    }
    t.onSpinningBranch(0x50);
    EXPECT_TRUE(t.isConfirmed(0x50));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SibThreshold,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u));

}  // namespace
}  // namespace bowsim
