#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/json.hpp"
#include "src/harness/json_check.hpp"
#include "src/syncprof/syncprof.hpp"

/**
 * @file
 * The sync-contention profiler (docs/SYNC.md): histogram bucketing
 * edges, Gini degenerate cases, storm-detector hysteresis, the
 * lock-session state machine (acquire/hold/hand-off latencies,
 * fairness, cross-attribution), and the --sync-report document checked
 * by json_check --sync-report.
 */

namespace bowsim {
namespace {

using harness::Json;
using syncprof::SyncProfileRegistry;

// --- log2 bucketing -----------------------------------------------------

TEST(SyncProf, Log2BucketEdges)
{
    // Bucket 0 is exactly 0; bucket k >= 1 covers [2^(k-1), 2^k).
    EXPECT_EQ(syncprof::log2Bucket(0), 0u);
    EXPECT_EQ(syncprof::log2Bucket(1), 1u);
    EXPECT_EQ(syncprof::log2Bucket(2), 2u);
    EXPECT_EQ(syncprof::log2Bucket(3), 2u);
    EXPECT_EQ(syncprof::log2Bucket(4), 3u);
    EXPECT_EQ(syncprof::log2Bucket(7), 3u);
    EXPECT_EQ(syncprof::log2Bucket(8), 4u);
    EXPECT_EQ(syncprof::log2Bucket(1023), 10u);
    EXPECT_EQ(syncprof::log2Bucket(1024), 11u);
    // Everything past 2^30 saturates into the last bucket.
    EXPECT_EQ(syncprof::log2Bucket(1ull << 30),
              syncprof::kHistBuckets - 1);
    EXPECT_EQ(syncprof::log2Bucket(~0ull), syncprof::kHistBuckets - 1);
}

TEST(SyncProf, LatencyHistCounts)
{
    syncprof::LatencyHist h;
    h.add(0);
    h.add(5);
    h.add(5);
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[syncprof::log2Bucket(5)], 2u);
}

// --- Gini ---------------------------------------------------------------

TEST(SyncProf, GiniDegenerateCasesAreZero)
{
    EXPECT_DOUBLE_EQ(syncprof::giniIndex({}), 0.0);
    EXPECT_DOUBLE_EQ(syncprof::giniIndex({7}), 0.0);
    EXPECT_DOUBLE_EQ(syncprof::giniIndex({0, 0, 0}), 0.0);
    EXPECT_DOUBLE_EQ(syncprof::giniIndex({4, 4, 4, 4}), 0.0);
}

TEST(SyncProf, GiniOrdersByInequality)
{
    const double skewed = syncprof::giniIndex({1, 1, 1, 97});
    const double mild = syncprof::giniIndex({20, 25, 25, 30});
    EXPECT_GT(skewed, mild);
    EXPECT_GT(skewed, 0.5);
    EXPECT_LE(skewed, 1.0);
    EXPECT_GE(mild, 0.0);
    // One warp holding everything approaches (n-1)/n.
    EXPECT_NEAR(syncprof::giniIndex({0, 0, 0, 100}), 0.75, 1e-9);
}

// --- the lock-session state machine -------------------------------------

constexpr Addr kLock = 0x1000;

/** acquire = CAS-success at an acquire PC; fail = failed CAS there;
 *  release = exchange at the release PC. */
void
acquire(SyncProfileRegistry &reg, std::uint64_t warp, Cycle now)
{
    reg.onAtomic(kLock, warp, now, true, false, true, false);
}

void
failAcquire(SyncProfileRegistry &reg, std::uint64_t warp, Cycle now)
{
    reg.onAtomic(kLock, warp, now, true, true, true, false);
}

void
releaseLock(SyncProfileRegistry &reg, std::uint64_t warp, Cycle now)
{
    reg.onAtomic(kLock, warp, now, false, false, false, true);
}

TEST(SyncProf, SessionTracksAcquireHoldAndHandoff)
{
    SyncProfileRegistry reg;
    acquire(reg, 1, 10);      // uncontended: acquire latency 0
    failAcquire(reg, 2, 12);  // warp 2's session opens here
    failAcquire(reg, 2, 14);
    releaseLock(reg, 1, 20);  // warp 1 held 10 cycles
    acquire(reg, 2, 24);      // contended acquire: 24 - 12 = 12

    const auto hot = reg.hotAddresses(1);
    ASSERT_EQ(hot.size(), 1u);
    const syncprof::AddrSummary &s = hot.front();
    EXPECT_EQ(s.addr, kLock);
    EXPECT_EQ(s.atomics, 5u);
    EXPECT_EQ(s.casAttempts, 4u);
    EXPECT_EQ(s.casFailures, 2u);
    EXPECT_EQ(s.acquires, 2u);
    EXPECT_EQ(s.releases, 1u);
    EXPECT_EQ(s.peakWaiters, 1u);
    EXPECT_DOUBLE_EQ(s.failedShare(), 0.5);

    const syncprof::Fairness f = reg.fairnessOf(kLock);
    EXPECT_EQ(f.warps, 2u);
    EXPECT_EQ(f.maxAcq, 1u);
    EXPECT_DOUBLE_EQ(f.meanAcq, 1.0);
    EXPECT_DOUBLE_EQ(f.gini, 0.0);

    // The histograms landed in the right buckets: acquire latencies
    // {0, 12}, hold {10}, hand-off {4} (release at 20, new owner at 24).
    const Json doc = reg.reportJson();
    const Json &a = doc.at("addresses").at(0);
    EXPECT_EQ(a.at("acquire_latency").at(0).asInt(), 1);
    EXPECT_EQ(a.at("acquire_latency")
                  .at(syncprof::log2Bucket(12))
                  .asInt(),
              1);
    EXPECT_EQ(a.at("hold_cycles").at(syncprof::log2Bucket(10)).asInt(),
              1);
    EXPECT_EQ(
        a.at("handoff_cycles").at(syncprof::log2Bucket(4)).asInt(), 1);
}

TEST(SyncProf, PlainStoreReleasesTheLock)
{
    // Ticket/array locks release with a plain store, not an exchange.
    SyncProfileRegistry reg;
    acquire(reg, 1, 10);
    reg.onWrite(kLock, 18);
    acquire(reg, 2, 30);
    const auto hot = reg.hotAddresses(1);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot.front().releases, 1u);
    EXPECT_EQ(hot.front().acquires, 2u);
    // Stores to never-atomically-touched addresses stay untracked.
    reg.onWrite(0x9999, 20);
    EXPECT_EQ(reg.trackedAddresses(), 1u);
}

TEST(SyncProf, BackoffAndSibAttributeToLastFailedAddress)
{
    SyncProfileRegistry reg;
    failAcquire(reg, 7, 10);
    reg.onBackoffEnter(7, 12);
    reg.onSibConfirm(7, 14);
    // A warp that never failed a CAS has no attribution target.
    reg.onBackoffEnter(99, 12);
    const auto hot = reg.hotAddresses(1);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot.front().backoffEnters, 1u);
    EXPECT_EQ(hot.front().sibConfirms, 1u);
}

TEST(SyncProf, ContendedLinesCountFirstFailurePerLine)
{
    SyncProfileRegistry reg;
    EXPECT_EQ(reg.contendedLines(), 0u);
    acquire(reg, 1, 1);  // success alone is not contention
    EXPECT_EQ(reg.contendedLines(), 0u);
    failAcquire(reg, 2, 2);
    failAcquire(reg, 2, 3);  // same line counted once
    EXPECT_EQ(reg.contendedLines(), 1u);
    reg.onAtomic(0x8000, 3, 4, true, true, true, false);
    EXPECT_EQ(reg.contendedLines(), 2u);
}

TEST(SyncProf, HotAddressesRankByFailuresThenAttempts)
{
    SyncProfileRegistry reg;
    // 0x3000: 2 failures; 0x2000: 1 failure, 2 attempts; 0x1000: 1
    // failure, 1 attempt.
    reg.onAtomic(0x3000, 1, 1, true, true, true, false);
    reg.onAtomic(0x3000, 2, 2, true, true, true, false);
    reg.onAtomic(0x2000, 1, 3, true, true, true, false);
    reg.onAtomic(0x2000, 2, 4, true, false, true, false);
    reg.onAtomic(0x1000, 1, 5, true, true, true, false);
    const auto hot = reg.hotAddresses(3);
    ASSERT_EQ(hot.size(), 3u);
    EXPECT_EQ(hot[0].addr, 0x3000u);
    EXPECT_EQ(hot[1].addr, 0x2000u);
    EXPECT_EQ(hot[2].addr, 0x1000u);
}

// --- storm detector ------------------------------------------------------

TEST(SyncProf, StormEntersAtNinetyPercentAndExitsBelowHalf)
{
    SyncProfileRegistry reg(4, /*storm_window=*/8);
    // Seven failures in a full window of eight is below the 90%
    // threshold: no storm yet.
    acquire(reg, 1, 0);
    for (int i = 0; i < 7; ++i)
        failAcquire(reg, 2, 10 + i);
    EXPECT_TRUE(reg.stormsOf(kLock).empty());
    // The eighth consecutive failure fills the window at 8/8.
    failAcquire(reg, 2, 20);
    auto storms = reg.stormsOf(kLock);
    ASSERT_EQ(storms.size(), 1u);  // open interval, reported to "now"
    // Successes dilute the window; hysteresis keeps the storm open
    // until the fill drops below 50%.
    for (int i = 0; i < 4; ++i)
        acquire(reg, 3, 30 + i);
    EXPECT_EQ(reg.stormsOf(kLock).size(), 1u);
    acquire(reg, 3, 40);  // popcount falls to 3 of 8: storm closes
    storms = reg.stormsOf(kLock);
    ASSERT_EQ(storms.size(), 1u);
    EXPECT_LE(storms[0].fromAttempt, storms[0].toAttempt);
    const auto hot = reg.hotAddresses(1);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot.front().stormCount, 1u);
}

TEST(SyncProf, NullHandleForwardsNothing)
{
    syncprof::SyncProf off;
    EXPECT_FALSE(off.enabled());
    // Every hook must be a safe no-op when detached.
    off.onAtomic(kLock, 1, 1, true, true, true, false);
    off.onWrite(kLock, 1);
    off.onBackoffEnter(1, 1);
    off.onSibConfirm(1, 1);
    off.onTimedAtomic(kLock, 1, false);

    SyncProfileRegistry reg;
    syncprof::SyncProf on(&reg);
    EXPECT_TRUE(on.enabled());
    on.onAtomic(kLock, 1, 1, true, true, true, false);
    EXPECT_EQ(reg.casAttempts(), 1u);
}

// --- json_check --sync-report -------------------------------------------

/** A report with real session, storm, fairness and timed data. */
Json
sampleReport()
{
    SyncProfileRegistry reg(4, 8);
    acquire(reg, 1, 10);
    for (int i = 0; i < 8; ++i)
        failAcquire(reg, 2, 20 + i);
    releaseLock(reg, 1, 30);
    acquire(reg, 2, 34);
    reg.onBackoffEnter(2, 36);
    reg.onTimedAtomic(kLock, 5, false);
    reg.onTimedAtomic(kLock, 9, true);
    reg.onAtomic(0x2000, 3, 40, true, true, true, false);
    return reg.reportJson();
}

/** First-occurrence textual surgery for building broken documents. */
Json
mutated(const Json &doc, const std::string &from, const std::string &to)
{
    std::string text = doc.dump();
    const std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return Json::parse(text);
}

TEST(JsonCheckSyncReport, ValidReportPasses)
{
    const harness::CheckResult r =
        harness::checkSyncReport(sampleReport());
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_NE(r.message.find("sync-report"), std::string::npos);
    EXPECT_NE(r.message.find("2 addresses"), std::string::npos);
}

TEST(JsonCheckSyncReport, UnknownVersionFails)
{
    const Json doc =
        mutated(sampleReport(), "\"version\":1", "\"version\":2");
    EXPECT_FALSE(harness::checkSyncReport(doc).ok);
}

TEST(JsonCheckSyncReport, FailedShareOutOfRangeFails)
{
    Json doc = sampleReport();
    const std::string share =
        "\"failed_share\":" +
        doc.at("totals").at("failed_share").dump();
    const harness::CheckResult r = harness::checkSyncReport(
        mutated(doc, share, "\"failed_share\":1.5"));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("failed_share"), std::string::npos);
}

TEST(JsonCheckSyncReport, MoreFailuresThanAttemptsFails)
{
    Json doc = sampleReport();
    const std::string failures =
        "\"cas_failures\":" +
        doc.at("totals").at("cas_failures").dump();
    const harness::CheckResult r = harness::checkSyncReport(
        mutated(doc, failures, "\"cas_failures\":999999"));
    EXPECT_FALSE(r.ok);
}

TEST(JsonCheckSyncReport, UnsortedAddressesFail)
{
    // Swapping the two address entries breaks the hottest-first order.
    Json doc = sampleReport();
    Json swapped = Json::object();
    for (const auto &[k, v] : doc.members()) {
        if (k == "addresses") {
            Json arr = Json::array();
            arr.push(doc.at("addresses").at(1));
            arr.push(doc.at("addresses").at(0));
            swapped.set(k, std::move(arr));
        } else {
            swapped.set(k, v);
        }
    }
    const harness::CheckResult r = harness::checkSyncReport(swapped);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("hottest-first"), std::string::npos);
}

TEST(JsonCheckSyncReport, MissingFairnessFails)
{
    const Json doc = mutated(sampleReport(), "\"fairness\"", "\"fair\"");
    EXPECT_FALSE(harness::checkSyncReport(doc).ok);
}

TEST(SyncProf, HotReportTextNamesTheAddress)
{
    SyncProfileRegistry empty;
    EXPECT_TRUE(empty.hotReport().empty());

    SyncProfileRegistry reg;
    acquire(reg, 1, 10);
    failAcquire(reg, 2, 12);
    const std::string text = reg.hotReport();
    EXPECT_NE(text.find("hot sync objects"), std::string::npos);
    EXPECT_NE(text.find("0x1000"), std::string::npos);
}

}  // namespace
}  // namespace bowsim
