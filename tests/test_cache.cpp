#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/mem/cache.hpp"

namespace bowsim {
namespace {

CacheConfig
tinyCache()
{
    // 2 sets x 2 ways x 128B lines = 512 B.
    return CacheConfig{512, 2, kLineBytes, 4};
}

Addr
lineInSet(unsigned set, unsigned k)
{
    // With 2 sets, line addresses alternate sets every 128 B.
    return static_cast<Addr>((set + 2 * k)) * kLineBytes;
}

TEST(Cache, MissThenHitAfterFill)
{
    Cache c(tinyCache());
    Addr a = lineInSet(0, 0);
    EXPECT_FALSE(c.access(a, false));
    c.fill(a, false, nullptr);
    EXPECT_TRUE(c.access(a, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLruOrCounters)
{
    Cache c(tinyCache());
    Addr a = lineInSet(0, 0);
    EXPECT_FALSE(c.probe(a));
    c.fill(a, false, nullptr);
    EXPECT_TRUE(c.probe(a));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyCache());
    Addr a = lineInSet(0, 0);
    Addr b = lineInSet(0, 1);
    Addr d = lineInSet(0, 2);
    c.fill(a, false, nullptr);
    c.fill(b, false, nullptr);
    // Touch a so b becomes LRU.
    EXPECT_TRUE(c.access(a, false));
    bool dirty = true;
    bool evicted = c.fill(d, false, &dirty);
    EXPECT_TRUE(evicted);
    EXPECT_FALSE(dirty);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(tinyCache());
    Addr a = lineInSet(1, 0);
    Addr b = lineInSet(1, 1);
    Addr d = lineInSet(1, 2);
    c.fill(a, true, nullptr);  // dirty
    c.fill(b, false, nullptr);
    EXPECT_TRUE(c.access(b, false));  // a is LRU and dirty
    bool dirty = false;
    c.fill(d, false, &dirty);
    EXPECT_TRUE(dirty);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(tinyCache());
    Addr a = lineInSet(0, 0);
    Addr b = lineInSet(0, 1);
    Addr d = lineInSet(0, 2);
    c.fill(a, false, nullptr);
    EXPECT_TRUE(c.access(a, true));  // dirty now
    c.fill(b, false, nullptr);
    EXPECT_TRUE(c.access(b, false));
    bool dirty = false;
    c.fill(d, false, &dirty);  // evicts a
    EXPECT_TRUE(dirty);
}

TEST(Cache, RefillOfPresentLineIsIdempotent)
{
    Cache c(tinyCache());
    Addr a = lineInSet(0, 0);
    c.fill(a, false, nullptr);
    bool dirty = true;
    bool evicted = c.fill(a, false, &dirty);
    EXPECT_FALSE(evicted);
    EXPECT_FALSE(dirty);
    EXPECT_TRUE(c.probe(a));
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(tinyCache());
    // Fill set 0 beyond capacity; set 1 lines must be unaffected.
    Addr s1 = lineInSet(1, 0);
    c.fill(s1, false, nullptr);
    for (unsigned k = 0; k < 4; ++k)
        c.fill(lineInSet(0, k), false, nullptr);
    EXPECT_TRUE(c.probe(s1));
}

TEST(Cache, InvalidateAllClearsEverything)
{
    Cache c(tinyCache());
    c.fill(lineInSet(0, 0), false, nullptr);
    c.fill(lineInSet(1, 0), false, nullptr);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(lineInSet(0, 0)));
    EXPECT_FALSE(c.probe(lineInSet(1, 0)));
}

TEST(Cache, ConfigComputesSets)
{
    CacheConfig cfg{16 * 1024, 4, 128, 32};
    EXPECT_EQ(cfg.numSets(), 32u);
    Cache c(cfg);
    EXPECT_EQ(c.numSets(), 32u);
}

TEST(Cache, RejectsDegenerateGeometry)
{
    CacheConfig cfg{64, 4, 128, 4};  // smaller than one line per way
    EXPECT_THROW(Cache c(cfg), FatalError);
}

/** Property: a freshly filled line survives (ways-1) distinct fills. */
class CacheWays : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheWays, MruSurvivesWaysMinusOneFills)
{
    unsigned ways = GetParam();
    CacheConfig cfg{static_cast<std::uint64_t>(ways) * kLineBytes, ways,
                    kLineBytes, 4};  // one set
    Cache c(cfg);
    Addr hot = 0;
    c.fill(hot, false, nullptr);
    for (unsigned k = 1; k < ways; ++k) {
        EXPECT_TRUE(c.access(hot, false));  // keep hot line MRU
        c.fill(static_cast<Addr>(k) * kLineBytes, false, nullptr);
        EXPECT_TRUE(c.probe(hot)) << "evicted after fill " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Geometry, CacheWays,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

}  // namespace
}  // namespace bowsim
