#include <gtest/gtest.h>

#include <iostream>

#include "src/kernels/hashtable.hpp"
#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

namespace bowsim {
namespace {

GpuConfig
baseConfig(SchedulerKind sched, bool bows)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.scheduler = sched;
    cfg.bows.enabled = bows;
    return cfg;
}

HashtableParams
contendedHt()
{
    HashtableParams p;
    p.insertions = 4096;
    p.buckets = 64;
    p.ctas = 8;
    p.threadsPerCta = 256;
    return p;
}

KernelStats
runHt(const GpuConfig &cfg, const HashtableParams &p)
{
    Gpu gpu(cfg);
    auto h = makeHashtable(p);
    return h->run(gpu);
}

TEST(Integration, DdosDetectsHashtableSpinBranchWithNoFalsePositives)
{
    KernelStats s = runHt(baseConfig(SchedulerKind::GTO, false),
                          contendedHt());
    EXPECT_DOUBLE_EQ(s.ddos.tsdr(), 1.0) << "HT spin branch not confirmed";
    EXPECT_DOUBLE_EQ(s.ddos.fsdr(), 0.0) << "XOR hashing false-detected";
    EXPECT_GT(s.ddos.dprTrue(), 0.0);
    EXPECT_LT(s.ddos.dprTrue(), 0.5) << "detection phase suspiciously long";
}

TEST(Integration, BowsSpeedsUpContendedHashtable)
{
    KernelStats base = runHt(baseConfig(SchedulerKind::GTO, false),
                             contendedHt());
    KernelStats bows = runHt(baseConfig(SchedulerKind::GTO, true),
                             contendedHt());
    std::cout << "[ht-contended] GTO=" << base.cycles
              << " GTO+BOWS=" << bows.cycles << " speedup="
              << static_cast<double>(base.cycles) / bows.cycles << "\n";
    EXPECT_LT(bows.cycles, base.cycles);
    // BOWS exists to cut wasted spin work: dynamic instructions and lock
    // failures must drop substantially (paper: 2.1x fewer instructions).
    EXPECT_LT(bows.threadInstructions, base.threadInstructions);
    EXPECT_LT(bows.outcomes.interWarpFail, base.outcomes.interWarpFail);
}

TEST(Integration, BowsLeavesSyncFreeKernelsUntouchedWithXorHashing)
{
    for (const std::string &name : syncFreeKernelNames()) {
        Cycle cycles[2];
        for (int bows = 0; bows < 2; ++bows) {
            Gpu gpu(baseConfig(SchedulerKind::GTO, bows != 0));
            auto h = makeBenchmark(name, 0.25);
            cycles[bows] = h->run(gpu).cycles;
        }
        EXPECT_EQ(cycles[0], cycles[1]) << name;
    }
}

TEST(Integration, ModuloHashingFalselyDetectsPowerOfTwoLoops)
{
    for (const char *name : {"MS", "HL"}) {
        GpuConfig cfg = baseConfig(SchedulerKind::GTO, false);
        cfg.ddos.hash = HashKind::Modulo;
        Gpu gpu(cfg);
        auto h = makeBenchmark(name, 0.25);
        KernelStats s = h->run(gpu);
        EXPECT_GT(s.ddos.fsdr(), 0.0)
            << name << ": MODULO hashing should false-detect";
    }
    // The same kernels under XOR hashing are clean.
    for (const char *name : {"MS", "HL"}) {
        GpuConfig cfg = baseConfig(SchedulerKind::GTO, false);
        cfg.ddos.hash = HashKind::Xor;
        Gpu gpu(cfg);
        auto h = makeBenchmark(name, 0.25);
        KernelStats s = h->run(gpu);
        EXPECT_DOUBLE_EQ(s.ddos.fsdr(), 0.0) << name;
    }
}

TEST(Integration, OracleAndDdosSibsAgreeOnHashtable)
{
    GpuConfig ddos_cfg = baseConfig(SchedulerKind::GTO, true);
    ddos_cfg.spinDetect = SpinDetect::Ddos;
    GpuConfig oracle_cfg = baseConfig(SchedulerKind::GTO, true);
    oracle_cfg.spinDetect = SpinDetect::Oracle;
    KernelStats d = runHt(ddos_cfg, contendedHt());
    KernelStats o = runHt(oracle_cfg, contendedHt());
    std::cout << "[ht-oracle-vs-ddos] oracle=" << o.cycles
              << " ddos=" << d.cycles << "\n";
    // DDOS pays a detection phase, then behaves like the oracle; allow a
    // modest gap in either direction.
    double ratio = static_cast<double>(d.cycles) / o.cycles;
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

TEST(Integration, BowsReducesBackedOffCompetition)
{
    KernelStats bows = runHt(baseConfig(SchedulerKind::GTO, true),
                             contendedHt());
    // Fig. 11: under contention a visible fraction of resident warps sit
    // in the backed-off state.
    EXPECT_GT(bows.backedOffFraction(), 0.02);
    EXPECT_LT(bows.backedOffFraction(), 0.98);
}

TEST(Integration, SpinDetectNoneDisablesBows)
{
    GpuConfig off = baseConfig(SchedulerKind::GTO, true);
    off.spinDetect = SpinDetect::None;
    GpuConfig plain = baseConfig(SchedulerKind::GTO, false);
    KernelStats a = runHt(off, contendedHt());
    KernelStats b = runHt(plain, contendedHt());
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Integration, ContentionSweepBowsGainGrowsWithContention)
{
    double speedup_high, speedup_low;
    {
        HashtableParams p = contendedHt();
        p.buckets = 16;
        speedup_high =
            static_cast<double>(
                runHt(baseConfig(SchedulerKind::GTO, false), p).cycles) /
            runHt(baseConfig(SchedulerKind::GTO, true), p).cycles;
    }
    {
        HashtableParams p = contendedHt();
        p.buckets = 4096;
        speedup_low =
            static_cast<double>(
                runHt(baseConfig(SchedulerKind::GTO, false), p).cycles) /
            runHt(baseConfig(SchedulerKind::GTO, true), p).cycles;
    }
    std::cout << "[contention] speedup@32buckets=" << speedup_high
              << " speedup@4096buckets=" << speedup_low << "\n";
    EXPECT_GT(speedup_high, speedup_low);
    EXPECT_GT(speedup_high, 1.1);
}

TEST(Integration, PascalConfigRunsTheSuite)
{
    GpuConfig cfg = makeGtx1080TiConfig();
    cfg.numCores = 4;
    cfg.bows.enabled = true;
    Gpu gpu(cfg);
    auto h = makeBenchmark("HT", 0.2);
    KernelStats s = h->run(gpu);
    EXPECT_GT(s.cycles, 0u);
}

}  // namespace
}  // namespace bowsim
