#include <gtest/gtest.h>

#include "src/common/log.hpp"
#include "src/mem/dram.hpp"
#include "src/mem/interconnect.hpp"
#include "src/mem/l2_bank.hpp"
#include "src/mem/memory_space.hpp"

namespace bowsim {
namespace {

// ----------------------------------------------------------- MemorySpace

TEST(MemorySpace, ZeroInitialized)
{
    MemorySpace m;
    EXPECT_EQ(m.read(0x12345, 8), 0);
}

TEST(MemorySpace, ReadBackWrites)
{
    MemorySpace m;
    m.write(0x100, 0x1122334455667788, 8);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788);
}

TEST(MemorySpace, NarrowWritesSignExtendOnRead)
{
    MemorySpace m;
    m.write(0x200, -1, 4);
    EXPECT_EQ(m.read(0x200, 4), -1);
    m.write(0x300, 0x80000000u, 4);
    EXPECT_EQ(m.read(0x300, 4),
              static_cast<Word>(static_cast<std::int32_t>(0x80000000u)));
}

TEST(MemorySpace, NarrowWriteLeavesNeighboursIntact)
{
    MemorySpace m;
    m.write(0x400, 0x0102030405060708, 8);
    m.write(0x400, 0x7f, 4);
    EXPECT_EQ(m.read(0x404, 4), 0x01020304);
}

TEST(MemorySpace, CrossPageBulkCopy)
{
    MemorySpace m;
    std::vector<std::uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = MemorySpace::kPageBytes - 123;  // straddle pages
    m.writeBytes(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    m.readBytes(base, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(MemorySpace, AllocatorReturnsAlignedDisjointRegions)
{
    MemorySpace m;
    Addr a = m.allocate(100);
    Addr b = m.allocate(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(a, MemorySpace::kHeapBase);
}

TEST(MemorySpace, ClearResetsAllocatorAndContents)
{
    MemorySpace m;
    Addr a = m.allocate(64);
    m.write(a, 42, 8);
    m.clear();
    EXPECT_EQ(m.read(a, 8), 0);
    EXPECT_EQ(m.allocate(64), a);
}

TEST(MemorySpace, RejectsBadAccessSize)
{
    MemorySpace m;
    EXPECT_THROW(m.read(0, 3), PanicError);
    EXPECT_THROW(m.write(0, 1, 16), PanicError);
}

// -------------------------------------------------------------- timing --

TEST(Dram, LatencyAppliesToIsolatedAccess)
{
    DramChannel d(200, 4);
    EXPECT_EQ(d.schedule(1000), 1200u);
}

TEST(Dram, ServicePeriodLimitsBandwidth)
{
    DramChannel d(200, 4);
    Cycle first = d.schedule(0);
    Cycle second = d.schedule(0);
    Cycle third = d.schedule(0);
    EXPECT_EQ(first, 200u);
    EXPECT_EQ(second, 204u);
    EXPECT_EQ(third, 208u);
    EXPECT_EQ(d.accesses(), 3u);
}

TEST(Dram, WritebackConsumesBandwidth)
{
    DramChannel d(100, 10);
    d.scheduleWriteback(0);
    EXPECT_EQ(d.schedule(0), 110u);  // queued behind the writeback
    EXPECT_EQ(d.writebacks(), 1u);
}

TEST(Interconnect, PortSerializesOnePacketPerCycle)
{
    Interconnect icnt(2, 24);
    EXPECT_EQ(icnt.inject(0, 100), 124u);
    EXPECT_EQ(icnt.inject(0, 100), 125u);
    EXPECT_EQ(icnt.inject(1, 100), 124u);  // other port independent
    EXPECT_EQ(icnt.packets(), 3u);
}

GpuConfig
memTestConfig()
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numL2Banks = 2;
    return cfg;
}

TEST(MemorySystem, ReadMissGoesToDramThenHits)
{
    GpuConfig cfg = memTestConfig();
    MemorySystem mem(cfg);
    MemPacket pkt{0x10000, MemPacket::Type::Read, 0, MemScope::Device, 1};
    Cycle miss = mem.request(pkt, 0);
    // Miss path: icnt + L2 tag + DRAM + return icnt.
    Cycle expected_min = 2 * cfg.icntLatency + cfg.l2HitLatency +
                         cfg.dramLatency;
    EXPECT_GE(miss, expected_min);

    Cycle hit = mem.request(pkt, miss);
    EXPECT_LT(hit - miss, expected_min);
    EXPECT_EQ(mem.stats().l2Hits, 1u);
    EXPECT_EQ(mem.stats().l2Misses, 1u);
}

TEST(MemorySystem, WritesReturnNoReplyButCountTraffic)
{
    MemorySystem mem(memTestConfig());
    MemPacket pkt{0x20000, MemPacket::Type::Write, 0, MemScope::Device, 1};
    EXPECT_EQ(mem.request(pkt, 0), 0u);
    EXPECT_EQ(mem.stats().l2Accesses, 1u);
}

TEST(MemorySystem, AtomicsToOneBankSerialize)
{
    GpuConfig cfg = memTestConfig();
    MemorySystem mem(cfg);
    // Same line -> same bank; atomics pay the per-bank atomic period.
    Cycle t1 = mem.request({0x30000, MemPacket::Type::Atomic, 0, MemScope::Device, 1}, 0);
    Cycle t2 = mem.request({0x30008, MemPacket::Type::Atomic, 1, MemScope::Device, 2}, 0);
    Cycle t3 = mem.request({0x30010, MemPacket::Type::Atomic, 2, MemScope::Device, 3}, 0);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
    EXPECT_EQ(mem.stats().atomics, 3u);
}

TEST(MemorySystem, DifferentBanksProceedInParallel)
{
    GpuConfig cfg = memTestConfig();
    MemorySystem mem(cfg);
    // Consecutive lines map to different banks (2 banks).
    Cycle a = mem.request({0x40000, MemPacket::Type::Atomic, 0, MemScope::Device, 1}, 0);
    Cycle b = mem.request({0x40080, MemPacket::Type::Atomic, 1, MemScope::Device, 2}, 0);
    EXPECT_EQ(a, b);  // no serialization across banks
}

TEST(MemorySystem, BankCongestionGrowsLatency)
{
    GpuConfig cfg = memTestConfig();
    MemorySystem mem(cfg);
    // Prime the line so every atomic hits in the L2 and timing is pure
    // bank serialization.
    (void)mem.request({0x50000, MemPacket::Type::Read, 0, MemScope::Device, 99}, 0);
    Cycle first = 0;
    Cycle last = 0;
    for (unsigned i = 0; i < 16; ++i) {
        Cycle done = mem.request(
            {0x50000 + 8 * i, MemPacket::Type::Atomic, i % cfg.numCores,
             MemScope::Device, i},
            1000);
        if (i == 0)
            first = done;
        EXPECT_GE(done, last);
        last = done;
    }
    // 15 atomics queued behind the first, each paying the per-bank
    // atomic service period.
    EXPECT_GE(last, first + 4 * 15);
}

}  // namespace
}  // namespace bowsim
