#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

/**
 * Observable timing-model properties of the memory pipeline, asserted
 * through whole-simulation statistics: volatile loads bypass the L1,
 * coalescing collapses unit-stride warps to line transactions, and MSHRs
 * merge concurrent misses to one DRAM fetch.
 */

namespace bowsim {
namespace {

GpuConfig
oneCore()
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    return cfg;
}

KernelStats
runLoadLoop(bool use_volatile, unsigned iters)
{
    Gpu gpu(oneCore());
    Addr flag = gpu.malloc(8);
    std::string src = std::string(R"(
.kernel poll
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
  mov %r3, 0;
LOOP:
)") + (use_volatile ? "  ld.volatile.global.u64 %r4, [%r1];\n"
                    : "  ld.global.u64 %r4, [%r1];\n") +
                      R"(
  add %r3, %r3, 1;
  setp.lt.s64 %p1, %r3, %r2;
  @%p1 bra LOOP;
  exit;
)";
    Program prog = assemble(src);
    return gpu.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                      {static_cast<Word>(flag),
                       static_cast<Word>(iters)});
}

TEST(LdstTiming, VolatileLoadsBypassTheL1)
{
    const unsigned iters = 64;
    KernelStats vol = runLoadLoop(true, iters);
    KernelStats cached = runLoadLoop(false, iters);
    // Cached polling hits in the L1 after the first fill...
    EXPECT_GE(cached.l1Hits, iters - 2);
    // ...volatile polling never does: every access reaches the L2.
    EXPECT_EQ(vol.l1Hits, 0u);
    EXPECT_GE(vol.mem.l2Accesses, static_cast<std::uint64_t>(iters));
    EXPECT_LE(cached.mem.l2Accesses, 4u);
}

TEST(LdstTiming, UnitStrideCoalescesToTwoLinesPerWarp)
{
    Gpu gpu(oneCore());
    const unsigned n = 1024;
    Addr data = gpu.malloc(n * 8);
    // One load per thread, unit stride: 32 lanes x 8 B = 2 lines/warp.
    Program prog = assemble(R"(
.kernel unit
.param 1
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r2, [0];
  shl %r3, %r0, 3;
  add %r3, %r2, %r3;
  ld.global.u64 %r4, [%r3];
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                               {static_cast<Word>(data)});
    unsigned warps = 4 * 256 / kWarpSize;
    EXPECT_EQ(s.l1Accesses, 2u * warps);
}

TEST(LdstTiming, LineStrideScattersToThirtyTwoLinesPerWarp)
{
    Gpu gpu(oneCore());
    const unsigned n = 1024;
    Addr data = gpu.malloc(std::uint64_t{n} * kLineBytes);
    Program prog = assemble(R"(
.kernel strided
.param 1
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r2, [0];
  mul %r3, %r0, 128;
  add %r3, %r2, %r3;
  ld.global.u64 %r4, [%r3];
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{256, 1, 1},
                               {static_cast<Word>(data)});
    unsigned warps = 256 / kWarpSize;
    EXPECT_EQ(s.l1Accesses, kWarpSize * warps);
}

TEST(LdstTiming, MshrsMergeConcurrentMissesToOneFetch)
{
    Gpu gpu(oneCore());
    Addr data = gpu.malloc(kLineBytes);
    // Every warp loads the same line at roughly the same time: one DRAM
    // fetch services them all (plus the store-through traffic of zero).
    Program prog = assemble(R"(
.kernel sameline
.param 1
  ld.param.u64 %r1, [0];
  ld.global.u64 %r2, [%r1];
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{512, 1, 1},
                               {static_cast<Word>(data)});
    // 16 warps touch the line; misses merge in the MSHR, so DRAM sees
    // only the single compulsory fetch.
    EXPECT_EQ(s.mem.dramAccesses, 1u);
    EXPECT_LE(s.mem.l2Misses, 1u);
}

TEST(LdstTiming, StoresAreWriteThroughNoAllocate)
{
    Gpu gpu(oneCore());
    Addr data = gpu.malloc(64 * kLineBytes);
    Program prog = assemble(R"(
.kernel wt
.param 1
  mov %r0, %tid;
  ld.param.u64 %r1, [0];
  mul %r2, %r0, 128;
  add %r2, %r1, %r2;
  st.global.u64 [%r2], %r0;
  ld.global.u64 %r3, [%r2];
  exit;
)");
    KernelStats s = gpu.launch(prog, Dim3{1, 1, 1}, Dim3{32, 1, 1},
                               {static_cast<Word>(data)});
    // The store does not allocate, so the following load misses: the L1
    // records zero store-hits and the loads all miss once.
    EXPECT_EQ(s.l1Hits, 0u);
    EXPECT_GE(s.l1Misses, 32u);
}

TEST(LdstTiming, MemoryLatencyOrdersDependentChain)
{
    // A pointer-chase serializes on memory latency; its cycle count must
    // scale linearly with chain length.
    auto chase = [](unsigned hops) {
        Gpu gpu(oneCore());
        const unsigned n = 512;
        std::vector<Word> chain(n);
        Addr base = gpu.malloc(n * 8);
        for (unsigned i = 0; i < n; ++i)
            chain[i] =
                static_cast<Word>(base + ((i * 67 + 1) % n) * 8);
        gpu.memcpyToDevice(base, chain.data(), n * 8);
        Program prog = assemble(R"(
.kernel chase
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
  mov %r3, 0;
LOOP:
  ld.global.u64 %r1, [%r1];
  add %r3, %r3, 1;
  setp.lt.s64 %p1, %r3, %r2;
  @%p1 bra LOOP;
  exit;
)");
        return gpu
            .launch(prog, Dim3{1, 1, 1}, Dim3{1, 1, 1},
                    {static_cast<Word>(base), static_cast<Word>(hops)})
            .cycles;
    };
    Cycle short_chain = chase(16);
    Cycle long_chain = chase(64);
    double ratio = static_cast<double>(long_chain) / short_chain;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
}

}  // namespace
}  // namespace bowsim
