#include <gtest/gtest.h>

#include "src/stats/ddos_accuracy.hpp"
#include "src/stats/stats.hpp"

namespace bowsim {
namespace {

TEST(Stats, SimdEfficiencyFullAndHalf)
{
    KernelStats s;
    s.warpInstructions = 10;
    s.activeLaneSum = 10 * kWarpSize;
    EXPECT_DOUBLE_EQ(s.simdEfficiency(), 1.0);
    s.activeLaneSum = 10 * kWarpSize / 2;
    EXPECT_DOUBLE_EQ(s.simdEfficiency(), 0.5);
}

TEST(Stats, DerivedMetricsHandleZeroDenominators)
{
    KernelStats s;
    EXPECT_DOUBLE_EQ(s.simdEfficiency(), 0.0);
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.syncInstructionFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.backedOffFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.avgDelayLimit(), 0.0);
}

TEST(Stats, MillisecondsUsesClock)
{
    KernelStats s;
    s.cycles = 700000;
    EXPECT_DOUBLE_EQ(s.milliseconds(700.0), 1.0);
}

TEST(Stats, AccumulationSumsEverything)
{
    KernelStats a;
    a.cycles = 10;
    a.warpInstructions = 100;
    a.outcomes.lockSuccess = 5;
    a.mem.l2Accesses = 7;
    a.energyNj = 1.5;
    KernelStats b = a;
    a += b;
    EXPECT_EQ(a.cycles, 20u);
    EXPECT_EQ(a.warpInstructions, 200u);
    EXPECT_EQ(a.outcomes.lockSuccess, 10u);
    EXPECT_EQ(a.mem.l2Accesses, 14u);
    EXPECT_DOUBLE_EQ(a.energyNj, 3.0);
}

TEST(Stats, OutcomeTotals)
{
    SyncOutcomes o;
    o.lockSuccess = 1;
    o.interWarpFail = 2;
    o.intraWarpFail = 3;
    o.waitExitSuccess = 4;
    o.waitExitFail = 5;
    EXPECT_EQ(o.total(), 15u);
}

TEST(Stats, SummaryMentionsKernelName)
{
    KernelStats s;
    s.kernel = "HT";
    s.cycles = 100;
    s.warpInstructions = 50;
    EXPECT_NE(summary(s).find("HT"), std::string::npos);
}

// -------------------------------------------------------- DdosAccuracy --

TEST(DdosAccuracyReport, PerfectDetection)
{
    DdosAccuracy acc;
    acc.onBackwardBranch(10, 100);
    acc.onBackwardBranch(10, 200);
    acc.onConfirmed(10, 150);
    acc.onBackwardBranch(10, 1100);
    auto r = acc.report({10});
    EXPECT_DOUBLE_EQ(r.tsdr(), 1.0);
    EXPECT_DOUBLE_EQ(r.fsdr(), 0.0);
    EXPECT_DOUBLE_EQ(r.dprTrue(), 50.0 / 1000.0);
}

TEST(DdosAccuracyReport, MissedDetection)
{
    DdosAccuracy acc;
    acc.onBackwardBranch(10, 100);
    acc.onBackwardBranch(20, 100);
    acc.onConfirmed(20, 150);
    auto r = acc.report({10, 20});
    EXPECT_DOUBLE_EQ(r.tsdr(), 0.5);
}

TEST(DdosAccuracyReport, FalseDetection)
{
    DdosAccuracy acc;
    acc.onBackwardBranch(30, 100);
    acc.onConfirmed(30, 200);
    auto r = acc.report({});
    EXPECT_DOUBLE_EQ(r.fsdr(), 1.0);
    EXPECT_EQ(r.falseDetected, 1u);
}

TEST(DdosAccuracyReport, EmptyKernelDefaults)
{
    DdosAccuracy acc;
    auto r = acc.report({});
    EXPECT_DOUBLE_EQ(r.tsdr(), 1.0);  // vacuous truth: nothing to find
    EXPECT_DOUBLE_EQ(r.fsdr(), 0.0);
}

TEST(DdosAccuracyReport, MergeTakesEarliestTimes)
{
    DdosAccuracy a;
    a.onBackwardBranch(10, 500);
    a.onConfirmed(10, 900);
    DdosAccuracy b;
    b.onBackwardBranch(10, 100);
    b.onBackwardBranch(10, 2000);
    b.onConfirmed(10, 700);
    a.merge(b);
    auto r = a.report({10});
    EXPECT_EQ(r.trueDetected, 1u);
    // firstSeen = 100, confirmed = 700, lastSeen = 2000.
    EXPECT_NEAR(r.dprTrue(), 600.0 / 1900.0, 1e-9);
}

TEST(DdosAccuracyReport, ConfirmationTimeIsSticky)
{
    DdosAccuracy acc;
    acc.onBackwardBranch(10, 100);
    acc.onConfirmed(10, 150);
    acc.onConfirmed(10, 400);  // later confirmations ignored
    acc.onBackwardBranch(10, 1100);
    auto r = acc.report({10});
    EXPECT_DOUBLE_EQ(r.dprTrue(), 50.0 / 1000.0);
}

}  // namespace
}  // namespace bowsim
