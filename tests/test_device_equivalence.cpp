#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

/**
 * Multi-device differential suite (labeled `slow`): the device/system
 * split (docs/PERF.md, "Device sharding") is a timing-only refactor
 * over one shared functional memory, so it inherits every determinism
 * contract the single-device simulator carries:
 *
 *  - Degenerate equivalence: numDevices = 1 must be byte-identical to
 *    a config that never mentions devices — no shards, no link
 *    traffic, same memory image and cycle count.
 *  - Knob invariance: at numDevices = 2, --sm-threads and idle-skip
 *    remain pure execution knobs — memory, cycles, outcomes, link
 *    packets, and every per-device shard must be bit-identical.
 *  - Aggregation: the system-wide KernelStats is exactly the fold of
 *    its per-device shards (additive counters sum; every shard reports
 *    the system horizon as its cycle count; shards never nest).
 *  - Schedule invariance across device counts: kernels whose result is
 *    interleaving-independent must land on the same memory image at 1
 *    and 2 devices, in cycle and functional mode alike — home routing
 *    moves latencies, never values.
 */

namespace bowsim {
namespace {

constexpr double kScale = 0.25;

/** Kernels with interleaving-independent final memory (the subset of
 *  test_differential.cpp's list exercised here; HT/TB/DS commit pointer
 *  links in acquisition order, so only knob-invariance applies). */
const std::vector<std::string> kInvariantKernels = {"ATM", "VEC", "ST"};

GpuConfig
deviceConfig(unsigned num_devices)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.scheduler = SchedulerKind::GTO;
    cfg.bows.enabled = true;
    cfg.numDevices = num_devices;
    return cfg;
}

struct RunResult {
    std::uint64_t digest;
    KernelStats stats;
};

RunResult
runKernel(const std::string &name, const GpuConfig &cfg)
{
    Gpu gpu(cfg);
    RunResult r;
    r.stats = makeBenchmark(name, kScale)->run(gpu);
    r.digest = gpu.mem().digest();
    return r;
}

TEST(DeviceEquivalence, SingleDeviceLaunchHasNoMultiDeviceArtifacts)
{
    // numDevices = 1 degenerates to the pre-split simulator: the
    // explicit value must match a config that never touches the device
    // fields, and neither run may grow shards or link traffic.
    GpuConfig implicit_cfg = makeGtx480Config();
    implicit_cfg.numCores = 4;
    implicit_cfg.scheduler = SchedulerKind::GTO;
    implicit_cfg.bows.enabled = true;
    RunResult implicit_run = runKernel("HT", implicit_cfg);

    RunResult explicit_run = runKernel("HT", deviceConfig(1));
    EXPECT_EQ(explicit_run.digest, implicit_run.digest);
    EXPECT_EQ(explicit_run.stats.cycles, implicit_run.stats.cycles);
    EXPECT_TRUE(explicit_run.stats.perDevice.empty());
    EXPECT_EQ(explicit_run.stats.mem.linkPackets, 0u);
}

class DeviceKnobEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(DeviceKnobEquivalence, ExecutionKnobsInvisibleAtTwoDevices)
{
    const std::string &name = GetParam();
    RunResult ref;
    bool have_ref = false;
    std::string ref_label;
    for (unsigned threads : {1u, 4u}) {
        for (bool skip : {true, false}) {
            GpuConfig cfg = deviceConfig(2);
            cfg.smThreads = threads;
            cfg.idleSkip = skip;
            RunResult r = runKernel(name, cfg);
            ASSERT_EQ(r.stats.perDevice.size(), 2u) << name;

            const std::string label =
                name + " sm-threads=" + std::to_string(threads) +
                (skip ? " skip=on" : " skip=off");
            if (!have_ref) {
                ref = r;
                ref_label = label;
                have_ref = true;
                continue;
            }
            ASSERT_EQ(r.digest, ref.digest)
                << label << " vs " << ref_label
                << ": memory image diverged";
            ASSERT_EQ(r.stats.cycles, ref.stats.cycles) << label;
            EXPECT_EQ(r.stats.warpInstructions,
                      ref.stats.warpInstructions)
                << label;
            EXPECT_EQ(r.stats.outcomes.total(), ref.stats.outcomes.total())
                << label;
            EXPECT_EQ(r.stats.mem.l2Accesses, ref.stats.mem.l2Accesses)
                << label;
            EXPECT_EQ(r.stats.mem.linkPackets, ref.stats.mem.linkPackets)
                << label;
            for (std::size_t d = 0; d < 2; ++d) {
                const KernelStats &a = r.stats.perDevice[d];
                const KernelStats &b = ref.stats.perDevice[d];
                EXPECT_EQ(a.cycles, b.cycles) << label << " device " << d;
                EXPECT_EQ(a.warpInstructions, b.warpInstructions)
                    << label << " device " << d;
                EXPECT_EQ(a.mem.l2Accesses, b.mem.l2Accesses)
                    << label << " device " << d;
                EXPECT_EQ(a.mem.linkPackets, b.mem.linkPackets)
                    << label << " device " << d;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DeviceKnobEquivalence,
                         ::testing::Values("HT", "ATM", "VEC"),
                         [](const auto &info) { return info.param; });

TEST(DeviceEquivalence, ShardsAggregateToSystemTotals)
{
    RunResult r = runKernel("HT", deviceConfig(2));
    ASSERT_EQ(r.stats.perDevice.size(), 2u);
    std::uint64_t warp_insns = 0;
    std::uint64_t l2 = 0;
    std::uint64_t link = 0;
    for (const KernelStats &s : r.stats.perDevice) {
        EXPECT_TRUE(s.perDevice.empty()) << "shards must not nest";
        // Every shard is cut at the system horizon, not a per-device
        // local clock — the devices share one lockstep cycle loop.
        EXPECT_EQ(s.cycles, r.stats.cycles);
        warp_insns += s.warpInstructions;
        l2 += s.mem.l2Accesses;
        link += s.mem.linkPackets;
    }
    EXPECT_EQ(warp_insns, r.stats.warpInstructions);
    EXPECT_EQ(l2, r.stats.mem.l2Accesses);
    EXPECT_EQ(link, r.stats.mem.linkPackets);
    // Line-interleaved homes guarantee remote traffic on any real
    // working set; a zero here means the link path was bypassed.
    EXPECT_GT(r.stats.mem.linkPackets, 0u);
}

TEST(DeviceEquivalence, ScheduleInvariantKernelsMatchAcrossDeviceCounts)
{
    // Home routing is timing-only over one shared memory: for kernels
    // whose result is interleaving-independent, the device count (and
    // functional mode at either count) must not change the final
    // memory image.
    for (const std::string &name : kInvariantKernels) {
        RunResult one = runKernel(name, deviceConfig(1));
        RunResult two = runKernel(name, deviceConfig(2));
        ASSERT_EQ(two.digest, one.digest)
            << name << ": memory diverged between 1 and 2 devices";

        GpuConfig fcfg = deviceConfig(2);
        fcfg.execMode = ExecMode::Functional;
        RunResult func = runKernel(name, fcfg);
        EXPECT_EQ(func.stats.cycles, 0u);
        ASSERT_EQ(func.digest, one.digest)
            << name
            << ": functional memory diverged from cycle mode at 2 devices";
    }
}

TEST(DeviceEquivalence, LinkLatencyShapesTimingButNotValues)
{
    // The modeled link is pure timing: stretching its latency an order
    // of magnitude must leave a schedule-invariant kernel's memory
    // image untouched while the cycle count moves.
    GpuConfig near_cfg = deviceConfig(2);
    RunResult near_link = runKernel("VEC", near_cfg);
    ASSERT_GT(near_link.stats.mem.linkPackets, 0u);

    GpuConfig far_cfg = near_cfg;
    far_cfg.linkLatency = 7000;
    RunResult far_link = runKernel("VEC", far_cfg);
    EXPECT_EQ(far_link.digest, near_link.digest);
    EXPECT_GT(far_link.stats.cycles, near_link.stats.cycles);
}

TEST(DeviceEquivalence, RepeatedMultiDeviceRunsAreBitIdentical)
{
    const GpuConfig cfg = deviceConfig(2);
    RunResult a = runKernel("HT", cfg);
    RunResult b = runKernel("HT", cfg);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.mem.linkPackets, b.stats.mem.linkPackets);
}

}  // namespace
}  // namespace bowsim
