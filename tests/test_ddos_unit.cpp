#include <gtest/gtest.h>

#include "src/core/ddos/ddos_unit.hpp"

namespace bowsim {
namespace {

DdosConfig
unitCfg()
{
    DdosConfig cfg;
    cfg.hash = HashKind::Xor;
    cfg.hashBits = 8;
    cfg.historyLength = 8;
    cfg.confidenceThreshold = 4;
    return cfg;
}

/** Drives one spin iteration (CAS-check + loop-check setps + branch). */
void
spinIteration(DdosUnit &u, unsigned warp, Cycle &now)
{
    u.onSetp(warp, 4, /*cas result*/ 1, 0, now++);
    u.onSetp(warp, 9, /*done flag*/ 0, 0, now++);
    u.onBackwardBranch(warp, 10, now++);
}

TEST(DdosUnit, ConfirmsSibAfterRepeatedSpinIterations)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    for (int i = 0; i < 10 && !u.isSib(10); ++i)
        spinIteration(u, 0, now);
    EXPECT_TRUE(u.isSib(10));
    EXPECT_TRUE(u.table().entries().count(10));
}

TEST(DdosUnit, NormalLoopNeverConfirmed)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    for (Word i = 0; i < 64; ++i) {
        u.onSetp(0, 4, i, 100, now++);  // induction variable changes
        u.onBackwardBranch(0, 5, now++);
    }
    EXPECT_FALSE(u.isSib(5));
}

TEST(DdosUnit, WarpsTrackIndependently)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    // Warp 0 spins; warp 1 runs a normal loop over the same PCs.
    for (int i = 0; i < 3; ++i) {
        spinIteration(u, 0, now);
        u.onSetp(1, 4, i, 0, now++);
        u.onSetp(1, 9, i + 1, 0, now++);
    }
    EXPECT_TRUE(u.isSpinning(0));
    EXPECT_FALSE(u.isSpinning(1));
}

TEST(DdosUnit, NonSpinningWarpsDecayConfidence)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    // Two spinning observations...
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    ASSERT_TRUE(u.table().entries().count(10));
    unsigned conf_before = u.table().entries().at(10).confidence;
    // ...then a non-spinning warp takes the same branch.
    u.onSetp(1, 4, 1, 0, now++);
    u.onBackwardBranch(1, 10, now++);
    ASSERT_TRUE(u.table().entries().count(10));
    EXPECT_LT(u.table().entries().at(10).confidence, conf_before);
}

TEST(DdosUnit, ResetWarpClearsSpinningState)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    ASSERT_TRUE(u.isSpinning(0));
    u.resetWarp(0);
    EXPECT_FALSE(u.isSpinning(0));
}

TEST(DdosUnit, DisabledUnitDoesNothing)
{
    DdosConfig cfg = unitCfg();
    cfg.enabled = false;
    DdosUnit u(cfg, 8);
    Cycle now = 0;
    for (int i = 0; i < 10; ++i)
        spinIteration(u, 0, now);
    EXPECT_FALSE(u.isSib(10));
    EXPECT_FALSE(u.isSpinning(0));
}

TEST(DdosUnit, AccuracyRecordsDetection)
{
    DdosUnit u(unitCfg(), 8);
    Cycle now = 100;
    for (int i = 0; i < 10; ++i)
        spinIteration(u, 0, now);
    auto report = u.accuracy().report({10});
    EXPECT_EQ(report.trueBranches, 1u);
    EXPECT_EQ(report.trueDetected, 1u);
    EXPECT_EQ(report.falseBranches, 0u);
}

TEST(DdosUnit, AccuracyScoresFalseDetection)
{
    // Ground truth says PC 10 is NOT a spin branch, but the values the
    // profiled thread produces repeat (aliasing) -> false detection.
    DdosUnit u(unitCfg(), 8);
    Cycle now = 0;
    for (int i = 0; i < 10; ++i)
        spinIteration(u, 0, now);
    auto report = u.accuracy().report({});
    EXPECT_EQ(report.falseBranches, 1u);
    EXPECT_EQ(report.falseDetected, 1u);
    EXPECT_GT(report.fsdr(), 0.0);
}

TEST(DdosUnit, TimeSharingOnlyProfilesTheOwner)
{
    DdosConfig cfg = unitCfg();
    cfg.timeShare = true;
    cfg.timeShareEpoch = 1000;
    DdosUnit u(cfg, 4);
    Cycle now = 0;
    // Warp 0 owns the shared registers during the first epoch.
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    EXPECT_TRUE(u.isSpinning(0));
    EXPECT_FALSE(u.isSpinning(1));  // not the owner, never profiled
}

TEST(DdosUnit, TimeSharingRotatesOwnershipAcrossEpochs)
{
    DdosConfig cfg = unitCfg();
    cfg.timeShare = true;
    cfg.timeShareEpoch = 100;
    DdosUnit u(cfg, 2);
    Cycle now = 0;
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    spinIteration(u, 0, now);
    ASSERT_TRUE(u.isSpinning(0));
    // Jump past the epoch: ownership rotates to warp 1 and the shared
    // history resets.
    now = 250;
    u.onSetp(1, 4, 1, 0, now);
    EXPECT_FALSE(u.isSpinning(0));
    // Warp 1 can now be detected.
    for (int i = 0; i < 3; ++i)
        spinIteration(u, 1, now);
    EXPECT_TRUE(u.isSpinning(1));
}

}  // namespace
}  // namespace bowsim
